// Package dir is the epoch-versioned partition-directory serving layer:
// the production read path of a PARAGON deployment, where millions of
// clients ask "which partition/rank owns vertex v?" while refinement and
// migration keep changing the answer underneath them.
//
// The core invariant is that no reader ever observes a torn mapping,
// under any fault schedule. Three rules enforce it:
//
//   - Reads are lock-free against an immutable epoch snapshot: one
//     atomic pointer load yields a Snapshot whose sharded, bit-packed
//     assignment vectors (partition.Packed, sharded by vertex-id range)
//     are never mutated after publication. Every (vertex, rank, epoch)
//     triple a reader extracts therefore belongs to exactly one
//     committed epoch.
//
//   - Writes arrive only as whole epochs. A publish validates its delta
//     (a migrate.Plan's move list) against the live snapshot, builds the
//     next snapshot copy-on-write (only shards containing moved vertices
//     are cloned), appends a prepare record and a commit record to the
//     journal — each an fsync modeled on the faultsim virtual clock,
//     droppable and retryable under the fault fabric — and only then
//     performs the single atomic pointer swap. Readers switch epochs at
//     one instruction; there is no intermediate state to observe.
//
//   - The flip is ordered strictly after the durable commit record, so
//     the journal always dominates the served state: recovery replays
//     the journal and rebuilds the directory bit-identically to the last
//     committed epoch. A publish that crashes between prepare and flip,
//     or whose journal append is dropped beyond the retry budget, leaves
//     the previous epoch fully live — the prepare record without a
//     commit is exactly what recovery discards.
//
// Stale-epoch reads (a client pinned to epoch e while e+1 is live) are
// answered with a deterministic forwarding hint — the current epoch's
// rank and epoch number — instead of an error, so clients converge
// without a coordination round. Epoch-flip events and lookup/forward/
// recovery metrics thread through internal/obs.
package dir

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"paragon/internal/exchange"
	"paragon/internal/faultsim"
	"paragon/internal/migrate"
	"paragon/internal/obs"
	"paragon/internal/partition"
)

// ErrPublishFailed marks an epoch publish abandoned by the fault layer —
// a journal append dropped beyond the retry budget, or a publisher
// crash. The previous epoch is still fully live and the directory keeps
// serving; detect with errors.Is.
var ErrPublishFailed = errors.New("directory epoch publish failed; previous epoch still live")

// ErrPublishCrashed is the publisher-crash flavor of ErrPublishFailed:
// the prepare record is durable but no commit was written, so recovery
// (like the live directory) stays on the previous epoch.
// errors.Is(err, ErrPublishFailed) also holds.
var ErrPublishCrashed = fmt.Errorf("publisher crashed between prepare and flip: %w", ErrPublishFailed)

// ErrFutureEpoch marks a lookup pinned to an epoch the directory has not
// committed — the one stale-read shape that is a client error, not a
// forwardable state.
var ErrFutureEpoch = errors.New("lookup pinned to an uncommitted epoch")

// Move aliases migrate.Move: the unit of an epoch delta, so directory
// deltas and migration plans are literally the same records.
type Move = migrate.Move

// Options tunes a Directory. The zero value is usable: 2^16-vertex
// shards, no fault injection, no observability.
type Options struct {
	// ShardBits is log2 of the vertex-id range covered by one shard
	// (default 16, clamped to [6, 24]). Smaller shards make epoch flips
	// cheaper (less copy-on-write) at slightly more pointer chasing.
	ShardBits int
	// Fabric optionally injects publish-phase faults: prepare/commit
	// journal appends may be dropped (retried with capped backoff), the
	// publisher may crash between prepare and flip, and a straggler
	// delay may stretch the window. Nil runs fault-free.
	Fabric faultsim.Fabric
	// Policy bounds journal-append retries; the zero value is
	// faultsim.DefaultPolicy.
	Policy faultsim.Policy
	// Clock, when set, absorbs the virtual ticks of modeled fsyncs,
	// backoffs, and straggler delays.
	Clock *faultsim.Clock
	// FsyncTicks is the virtual-clock cost of one modeled journal fsync
	// (default 2).
	FsyncTicks int64
	// Trace, when set, receives epoch_prepare / epoch_commit /
	// epoch_abort / dir_recovered events from the (serialized) publish
	// and recovery paths.
	Trace *obs.Tracer
	// Metrics, when set, accumulates the dir_* counters and the
	// dir_epoch gauge.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.ShardBits == 0 {
		o.ShardBits = 16
	}
	if o.ShardBits < 6 {
		o.ShardBits = 6
	}
	if o.ShardBits > 24 {
		o.ShardBits = 24
	}
	if o.FsyncTicks <= 0 {
		o.FsyncTicks = 2
	}
	o.Policy = o.Policy.Normalized()
	return o
}

// Snapshot is one immutable committed epoch: bit-packed assignment
// vectors sharded by vertex-id range. Snapshots are never mutated after
// publication — an epoch flip builds a new Snapshot sharing every
// untouched shard — so any number of readers may use one concurrently
// with publishes, without synchronization.
type Snapshot struct {
	epoch     int64
	k, n      int32
	shardBits uint
	shards    []*partition.Packed
	shardHash []uint64 // cached Hash64 per shard; folded by AssignHash
}

// Epoch returns the committed epoch number (0 = the base epoch).
func (s *Snapshot) Epoch() int64 { return s.epoch }

// K returns the partition/rank count.
func (s *Snapshot) K() int32 { return s.k }

// NumVertices returns the vertex-id space size.
func (s *Snapshot) NumVertices() int32 { return s.n }

// Rank returns the owner of vertex v in this epoch.
func (s *Snapshot) Rank(v int32) int32 {
	if v < 0 || v >= s.n {
		panic(fmt.Sprintf("dir: vertex %d out of range [0,%d)", v, s.n))
	}
	return s.shards[v>>s.shardBits].Get(v & (1<<s.shardBits - 1))
}

// AppendAssign appends the full assignment vector to dst and returns dst.
func (s *Snapshot) AppendAssign(dst []int32) []int32 {
	for _, sh := range s.shards {
		dst = sh.AppendAssign(dst)
	}
	return dst
}

// AssignHash returns an order-sensitive FNV-1a digest of the epoch's
// whole assignment (epoch number excluded): two snapshots mapping every
// vertex identically hash identically, whatever their copy-on-write
// lineage. This is the integrity digest the commit journal record
// carries and recovery re-derives.
func (s *Snapshot) AssignHash() uint64 {
	h := fnvFold(fnvOffset, uint64(uint32(s.k)))
	h = fnvFold(h, uint64(uint32(s.n)))
	for _, sh := range s.shardHash {
		h = fnvFold(h, sh)
	}
	return h
}

// buildSnapshot packs a plain assignment into the sharded epoch form.
func buildSnapshot(assign []int32, k int32, shardBits uint, epoch int64) *Snapshot {
	n := int32(len(assign))
	size := int32(1) << shardBits
	nshards := int((int64(n) + int64(size) - 1) / int64(size))
	s := &Snapshot{
		epoch: epoch, k: k, n: n, shardBits: shardBits,
		shards:    make([]*partition.Packed, nshards),
		shardHash: make([]uint64, nshards),
	}
	for si := 0; si < nshards; si++ {
		lo := int32(si) << shardBits
		hi := lo + size
		if hi > n {
			hi = n
		}
		s.shards[si] = partition.PackAssign(assign[lo:hi], k)
		s.shardHash[si] = s.shards[si].Hash64()
	}
	return s
}

// apply builds the next epoch copy-on-write: untouched shards are shared
// with s, shards containing moved vertices are cloned once and updated.
// The delta must be whole and consistent: every move's From must match
// this snapshot, every To must be a valid rank, and no vertex may be
// scheduled twice. Moves must be in a deterministic order (the caller's
// responsibility; migrate.Plan order and vertex order both qualify) for
// the first reported violation to be deterministic.
func (s *Snapshot) apply(moves []migrate.Move) (*Snapshot, error) {
	next := &Snapshot{
		epoch: s.epoch + 1, k: s.k, n: s.n, shardBits: s.shardBits,
		shards:    append([]*partition.Packed(nil), s.shards...),
		shardHash: append([]uint64(nil), s.shardHash...),
	}
	cloned := make([]bool, len(s.shards))
	seen := make(map[int32]struct{}, len(moves))
	mask := int32(1)<<s.shardBits - 1
	for i, m := range moves {
		if m.Vertex < 0 || m.Vertex >= s.n {
			return nil, fmt.Errorf("dir: delta move %d: vertex %d out of range [0,%d)", i, m.Vertex, s.n)
		}
		if m.To < 0 || m.To >= s.k {
			return nil, fmt.Errorf("dir: delta move %d: rank %d out of range [0,%d)", i, m.To, s.k)
		}
		if _, dup := seen[m.Vertex]; dup {
			return nil, fmt.Errorf("dir: delta move %d: vertex %d scheduled twice", i, m.Vertex)
		}
		seen[m.Vertex] = struct{}{}
		if got := s.Rank(m.Vertex); got != m.From {
			return nil, fmt.Errorf("dir: stale delta: move %d says vertex %d is on rank %d, epoch %d has %d", i, m.Vertex, m.From, s.epoch, got)
		}
		si := m.Vertex >> s.shardBits
		if !cloned[si] {
			next.shards[si] = next.shards[si].Clone()
			cloned[si] = true
		}
		next.shards[si].Set(m.Vertex&mask, m.To)
	}
	for si, c := range cloned {
		if c {
			next.shardHash[si] = next.shards[si].Hash64()
		}
	}
	return next, nil
}

// Result is a lookup answer. When the client's pinned epoch is stale,
// Forwarded is true and Rank/Epoch carry the deterministic forwarding
// hint: the currently live epoch and the vertex's rank in it.
type Result struct {
	Rank      int32
	Epoch     int64
	Forwarded bool
}

// dirMetrics resolves the registry handles the directory touches; the
// zero value (nil registry) makes every operation a no-op.
type dirMetrics struct {
	lookups      *obs.Counter
	forwards     *obs.Counter
	flips        *obs.Counter
	aborts       *obs.Counter
	crashes      *obs.Counter
	fsyncRetries *obs.Counter
	journalBytes *obs.Counter
	recoveries   *obs.Counter
	tornBytes    *obs.Counter
	epoch        *obs.Gauge
}

func newDirMetrics(r *obs.Registry) dirMetrics {
	if r == nil {
		return dirMetrics{}
	}
	return dirMetrics{
		lookups:      r.Counter("dir_lookups_total", "directory lookups served"),
		forwards:     r.Counter("dir_forwards_total", "stale-epoch lookups answered with a forwarding hint"),
		flips:        r.Counter("dir_epoch_flips_total", "epoch publishes committed and flipped live"),
		aborts:       r.Counter("dir_publish_aborts_total", "epoch publishes abandoned (crash or retry budget); previous epoch stayed live"),
		crashes:      r.Counter("dir_publish_crashes_total", "publishes killed between prepare and flip"),
		fsyncRetries: r.Counter("dir_fsync_retries_total", "journal appends retransmitted after a dropped fsync"),
		journalBytes: r.Counter("dir_journal_bytes_total", "journal bytes durably appended"),
		recoveries:   r.Counter("dir_recoveries_total", "directories rebuilt from a journal"),
		tornBytes:    r.Counter("dir_torn_bytes_total", "torn journal tail bytes discarded by recovery"),
		epoch:        r.Gauge("dir_epoch", "currently live directory epoch"),
	}
}

// Directory is the serving-layer instance. Lookups are safe from any
// number of goroutines and never block; publishes are serialized
// internally (last caller wins the next epoch number).
type Directory struct {
	opts  Options
	fab   faultsim.Fabric
	clk   *faultsim.Clock
	tr    *obs.Tracer
	mx    dirMetrics
	fsync int64

	cur atomic.Pointer[Snapshot]

	mu sync.Mutex // serializes publishers; guards the journal
	j  []byte     // journal: base record + per-epoch prepare/commit records
}

// New builds a directory serving epoch 0 from a full assignment vector
// (values in [0, k)) and writes the journal's base record. Construction
// is not a fault point: the base record is appended without injection
// (a deployment that cannot even write its base journal has nothing to
// recover).
func New(assign []int32, k int32, opts Options) (*Directory, error) {
	if k < 1 {
		return nil, fmt.Errorf("dir: k = %d must be positive", k)
	}
	for v, r := range assign {
		if r < 0 || r >= k {
			return nil, fmt.Errorf("dir: vertex %d assigned to %d outside [0,%d)", v, r, k)
		}
	}
	opts = opts.withDefaults()
	d := &Directory{
		opts: opts, fab: opts.Fabric, clk: opts.Clock, tr: opts.Trace,
		mx: newDirMetrics(opts.Metrics), fsync: opts.FsyncTicks,
	}
	s0 := buildSnapshot(assign, k, uint(opts.ShardBits), 0)
	d.j = appendBaseRecord(d.j, assign, k, uint(opts.ShardBits))
	d.mx.journalBytes.Add(int64(len(d.j)))
	d.advance(d.fsync)
	d.cur.Store(s0)
	d.mx.epoch.Set(0)
	return d, nil
}

// advance moves the virtual clock, when one is installed.
func (d *Directory) advance(ticks int64) {
	if d.clk != nil && ticks > 0 {
		d.clk.Advance(ticks)
	}
}

// Current returns the live epoch snapshot: one atomic load, never nil.
// The snapshot is immutable — callers may read it for any length of
// time while publishes flip the directory past them.
func (d *Directory) Current() *Snapshot { return d.cur.Load() }

// Epoch returns the currently live epoch number.
func (d *Directory) Epoch() int64 { return d.cur.Load().epoch }

// Lookup answers "which rank owns vertex v right now": the vertex's
// rank in the live epoch, and that epoch's number. Lock-free; safe from
// any number of goroutines concurrently with publishes.
func (d *Directory) Lookup(v int32) (rank int32, epoch int64) {
	s := d.cur.Load()
	d.mx.lookups.Inc()
	return s.Rank(v), s.epoch
}

// LookupAt answers a lookup from a client pinned to epoch. A current
// client (epoch == live) gets its rank straight; a stale client
// (epoch < live) gets the deterministic forwarding hint — Forwarded
// true, plus the live epoch and the vertex's rank in it — instead of an
// error; a client pinned past the live epoch is a protocol error
// (ErrFutureEpoch).
func (d *Directory) LookupAt(epoch int64, v int32) (Result, error) {
	s := d.cur.Load()
	d.mx.lookups.Inc()
	if epoch > s.epoch {
		return Result{}, fmt.Errorf("dir: epoch %d ahead of live epoch %d: %w", epoch, s.epoch, ErrFutureEpoch)
	}
	r := Result{Rank: s.Rank(v), Epoch: s.epoch, Forwarded: epoch < s.epoch}
	if r.Forwarded {
		d.mx.forwards.Inc()
	}
	return r, nil
}

// Publish applies one whole-epoch delta: validate against the live
// snapshot, build the next snapshot copy-on-write, journal prepare —
// fault point: the append's modeled fsync may be dropped and retried,
// and beyond the retry budget the publish aborts — then the
// crash/straggler window, then journal commit (same fault point), and
// only then the single atomic flip. On any abort the previous epoch is
// still fully live and the returned error matches ErrPublishFailed. An
// empty delta is a legal epoch flip.
//
// Moves must be in a deterministic order; migrate.Plan order (From, To,
// Vertex) and plain vertex order both qualify.
func (d *Directory) Publish(moves []migrate.Move) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.publishLocked(moves)
}

// publish fault-point coordinates: one fabric epoch per publish, ops
// within it.
const (
	opPrepare = 0 // Drop op of the prepare append
	opCommit  = 1 // Drop op of the commit append
	opPublish = 0 // CrashGroup / GroupDelay index of the publisher
)

func (d *Directory) publishLocked(moves []migrate.Move) (int64, error) {
	cur := d.cur.Load()
	next, err := cur.apply(moves)
	if err != nil {
		return 0, err
	}
	epoch := next.epoch
	fe := 0
	if d.fab != nil {
		fe = d.fab.NextEpoch()
	}
	plan := &migrate.Plan{K: cur.k, Moves: moves}
	attempts, err := d.appendRecord(recPrepare, epoch, plan.AppendBinary(nil), fe, opPrepare)
	if err != nil {
		d.abort(epoch, 0, attempts)
		return 0, err
	}
	if d.tr != nil {
		d.tr.Emit(obs.Event{Kind: obs.KindEpochPrepare, Round: -1, N: epoch, M: int64(len(moves))})
	}
	// The window the whole design defends: prepare is durable, the flip
	// has not happened. A crash here abandons the publish — the journal
	// keeps the commit-less prepare, recovery and the live directory
	// both stay on the previous epoch. A straggler only stretches the
	// window on the virtual clock; readers keep serving the old epoch
	// throughout either way.
	if d.fab != nil {
		if d.fab.CrashGroup(fe, opPublish) {
			d.abort(epoch, 1, attempts)
			d.mx.crashes.Inc()
			return 0, ErrPublishCrashed
		}
		d.advance(d.fab.GroupDelay(fe, opPublish))
	}
	attempts, err = d.appendRecord(recCommit, epoch, appendUint64(nil, next.AssignHash()), fe, opCommit)
	if err != nil {
		d.abort(epoch, 2, attempts)
		return 0, err
	}
	// The single atomic pointer swap: the only instruction at which
	// readers change epochs, ordered strictly after the durable commit.
	d.cur.Store(next)
	d.mx.flips.Inc()
	d.mx.epoch.Set(float64(epoch))
	if d.tr != nil {
		d.tr.Emit(obs.Event{Kind: obs.KindEpochCommit, Round: -1, N: epoch, M: int64(len(moves))})
	}
	return epoch, nil
}

// abort records a failed publish (phase 0 = prepare append, 1 = crash,
// 2 = commit append).
func (d *Directory) abort(epoch int64, phase int32, attempts int) {
	d.mx.aborts.Inc()
	if d.tr != nil {
		d.tr.Emit(obs.Event{Kind: obs.KindEpochAbort, Round: -1, A: phase, B: int32(attempts), N: epoch})
	}
}

// appendRecord journals one record under the fsync model: every attempt
// costs FsyncTicks of virtual time; under the fabric the write may be
// dropped and is retried after a capped backoff; beyond the retry budget
// the append fails with ErrPublishFailed and the journal is unchanged
// (the writer repairs its tail — torn tails only ever exist at a crash
// boundary, which the recovery sweep covers byte by byte).
func (d *Directory) appendRecord(typ byte, epoch int64, payload []byte, fe, op int) (attempts int, err error) {
	rec := appendRecordBytes(nil, typ, epoch, payload)
	for attempt := 0; ; attempt++ {
		d.advance(d.fsync)
		if d.fab == nil || !d.fab.Drop(fe, op, attempt) {
			d.j = append(d.j, rec...)
			d.mx.journalBytes.Add(int64(len(rec)))
			return attempt + 1, nil
		}
		if attempt >= d.opts.Policy.MaxRetries {
			return attempt + 1, fmt.Errorf("dir: journal append for epoch %d dropped %d times: %w", epoch, attempt+1, ErrPublishFailed)
		}
		d.mx.fsyncRetries.Inc()
		d.advance(d.opts.Policy.Backoff(attempt))
	}
}

// PublishAssign diffs a target assignment against the live epoch and
// publishes the difference as one whole epoch — the convenience form
// the refinement driver calls after each committed round. Because the
// diff is taken against the directory's own snapshot, a directory that
// fell behind (previous publishes aborted by faults) catches up in one
// flip.
func (d *Directory) PublishAssign(assign []int32) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	cur := d.cur.Load()
	if int32(len(assign)) != cur.n {
		return 0, fmt.Errorf("dir: assignment has %d vertices, directory %d", len(assign), cur.n)
	}
	var moves []migrate.Move
	for v := int32(0); v < cur.n; v++ {
		if from := cur.Rank(v); from != assign[v] {
			moves = append(moves, migrate.Move{Vertex: v, From: from, To: assign[v]})
		}
	}
	return d.publishLocked(moves)
}

// PublishUpdates publishes a location-exchange epoch delta
// (exchange.EpochDelta's output: vertex-sorted, duplicate-free) as one
// whole epoch, skipping no-op entries.
func (d *Directory) PublishUpdates(ups []exchange.Update) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	cur := d.cur.Load()
	moves := make([]migrate.Move, 0, len(ups))
	for _, u := range ups {
		if u.Vertex < 0 || u.Vertex >= cur.n {
			return 0, fmt.Errorf("dir: update vertex %d out of range [0,%d)", u.Vertex, cur.n)
		}
		if from := cur.Rank(u.Vertex); from != u.Rank {
			moves = append(moves, migrate.Move{Vertex: u.Vertex, From: from, To: u.Rank})
		}
	}
	return d.publishLocked(moves)
}

// PublishPlan runs the physical migration through migrate's journaled
// two-phase executor and, only if every rank committed, flips the
// directory to the new epoch. A rolled-back migration (fault abort or
// protocol violation) publishes nothing — stores and directory both
// stay on the old decomposition. A committed migration whose directory
// flip is then killed by the fault layer leaves the directory one epoch
// behind the stores; the next PublishAssign resynchronizes it.
func (d *Directory) PublishPlan(stores []*migrate.Store, plan *migrate.Plan, ctx migrate.AppContext) (int64, migrate.Stats, error) {
	st, err := migrate.ExecuteOpts(stores, plan, ctx, migrate.ExecOptions{
		Fabric: d.fab, Trace: d.tr, Metrics: d.opts.Metrics,
	})
	if err != nil {
		return 0, st, err
	}
	epoch, err := d.Publish(plan.Moves)
	return epoch, st, err
}

// JournalBytes returns a copy of the journal: the base record plus
// every prepare/commit appended since, including commit-less prepares
// of crashed publishes. Feeding any prefix of it to Recover rebuilds
// the directory at the last epoch whose commit record survives.
func (d *Directory) JournalBytes() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]byte(nil), d.j...)
}

// WriteJournal streams the journal to w.
func (d *Directory) WriteJournal(w io.Writer) (int, error) {
	d.mu.Lock()
	j := append([]byte(nil), d.j...)
	d.mu.Unlock()
	return w.Write(j)
}
