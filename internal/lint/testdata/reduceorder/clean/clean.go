// Package reduceorderclean is the shard-order reduction convention:
// partials land in slots keyed by their shard id, and the fold walks
// the slice front to back — the same order at every worker count.
package reduceorderclean

type part struct {
	shard int
	val   float64
}

// Sum receives into indexed slots, then folds serially.
func Sum(parts chan part, n int) float64 {
	partials := make([]float64, n)
	for i := 0; i < n; i++ {
		p := <-parts
		partials[p.shard] = p.val
	}
	var sum float64
	for _, v := range partials {
		sum += v
	}
	return sum
}

// Count shows the integer escape: completion-order integer folds are
// exact and associative, so they are fine.
func Count(sizes chan int, n int) int {
	var count int
	for i := 0; i < n; i++ {
		count += <-sizes
	}
	return count
}
