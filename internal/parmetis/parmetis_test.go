package parmetis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"paragon/internal/gen"
	"paragon/internal/partition"
	"paragon/internal/stream"
	"paragon/internal/topology"
)

func TestScratchRemapReducesMigrationVsFresh(t *testing.T) {
	g := gen.Mesh2D(30, 30)
	g.UseDegreeWeights()
	old := stream.DG(g, 8, stream.DefaultOptions())
	newP, err := Repartition(g, old, Options{Method: ScratchRemap, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := newP.Validate(g); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	c := topology.UniformMatrix(8)
	mig := partition.MigrationCost(g, old, newP, c)
	// Worst case: an adversarial relabel would migrate nearly everything.
	var total float64
	for v := int32(0); v < g.NumVertices(); v++ {
		total += float64(g.VertexSize(v))
	}
	if mig >= total {
		t.Fatalf("remap migrated everything: %v of %v", mig, total)
	}
}

func TestScratchRemapLabelMatching(t *testing.T) {
	// If old is already a fine partitioning, scratch-remap should keep
	// most vertices in place: relabeling must track the old labels.
	g := gen.Mesh2D(24, 24)
	old, err := Repartition(g, stream.DG(g, 4, stream.DefaultOptions()), Options{Method: ScratchRemap, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	again, err := Repartition(g, old, Options{Method: ScratchRemap, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for v := range old.Assign {
		if old.Assign[v] == again.Assign[v] {
			same++
		}
	}
	if float64(same) < 0.5*float64(len(old.Assign)) {
		t.Fatalf("only %d/%d vertices stayed put after remap", same, len(old.Assign))
	}
}

func TestGreedyAssignmentPrefersBigOverlap(t *testing.T) {
	overlap := [][]int64{
		{10, 0, 90},
		{80, 5, 0},
		{0, 70, 0},
	}
	relabel := greedyAssignment(overlap)
	want := []int32{2, 0, 1}
	for i := range want {
		if relabel[i] != want[i] {
			t.Fatalf("relabel = %v, want %v", relabel, want)
		}
	}
}

func TestGreedyAssignmentHandlesEmptyRows(t *testing.T) {
	overlap := [][]int64{
		{0, 0},
		{0, 0},
	}
	relabel := greedyAssignment(overlap)
	seen := map[int32]bool{}
	for _, r := range relabel {
		if r < 0 || r > 1 || seen[r] {
			t.Fatalf("relabel = %v not a permutation", relabel)
		}
		seen[r] = true
	}
}

func TestDiffusionRestoresBalance(t *testing.T) {
	g := gen.Mesh2D(30, 30)
	// Badly imbalanced start: everything in partition 0.
	old := partition.New(4, g.NumVertices())
	newP, err := Repartition(g, old, Options{Method: Diffusion, Eps: 0.10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := newP.Validate(g); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	before := partition.Skewness(g, old)
	after := partition.Skewness(g, newP)
	if after >= before {
		t.Fatalf("diffusion did not reduce skew: %.2f -> %.2f", before, after)
	}
	if after > 1.25 {
		t.Fatalf("diffusion left skew %.3f above tolerance", after)
	}
}

func TestDiffusionImprovesCutOfNoisyPartitioning(t *testing.T) {
	g := gen.Mesh2D(24, 24)
	good := stream.DG(g, 4, stream.DefaultOptions())
	// Perturb 20% of assignments.
	rng := rand.New(rand.NewSource(3))
	noisy := good.Clone()
	for v := range noisy.Assign {
		if rng.Float64() < 0.2 {
			noisy.Assign[v] = int32(rng.Intn(4))
		}
	}
	refined, err := Repartition(g, noisy, Options{Method: Diffusion, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if partition.EdgeCut(g, refined) >= partition.EdgeCut(g, noisy) {
		t.Fatalf("diffusion refinement did not reduce cut: %d -> %d",
			partition.EdgeCut(g, noisy), partition.EdgeCut(g, refined))
	}
}

func TestDiffusionKeepsMigrationLow(t *testing.T) {
	// The whole point of adaptive repartitioning: when the decomposition
	// is only slightly off, it must migrate far less than scratch-remap's
	// worst case.
	g := gen.Mesh2D(30, 30)
	good := stream.DG(g, 6, stream.DefaultOptions())
	rng := rand.New(rand.NewSource(5))
	noisy := good.Clone()
	for v := range noisy.Assign {
		if rng.Float64() < 0.05 {
			noisy.Assign[v] = int32(rng.Intn(6))
		}
	}
	refined, err := Repartition(g, noisy, Options{Method: Diffusion, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	c := topology.UniformMatrix(6)
	mig := partition.MigrationCost(g, noisy, refined, c)
	var total float64
	for v := int32(0); v < g.NumVertices(); v++ {
		total += float64(g.VertexSize(v))
	}
	if mig > total/2 {
		t.Fatalf("diffusion migrated %v of %v total size", mig, total)
	}
}

func TestRepartitionErrors(t *testing.T) {
	g := gen.ErdosRenyi(20, 40, 1)
	bad := partition.New(2, 5) // wrong length
	if _, err := Repartition(g, bad, Options{}); err == nil {
		t.Fatal("expected validation error")
	}
	ok := partition.New(2, g.NumVertices())
	if _, err := Repartition(g, ok, Options{Method: Method(99)}); err == nil {
		t.Fatal("expected unknown-method error")
	}
}

// Property: both methods always return valid decompositions that keep
// every vertex assigned and conserve total weight.
func TestQuickRepartitionValid(t *testing.T) {
	f := func(seed int64, m bool) bool {
		g := gen.ErdosRenyi(300, 900, seed)
		k := int32(4)
		old := stream.HP(g, k)
		method := ScratchRemap
		if m {
			method = Diffusion
		}
		newP, err := Repartition(g, old, Options{Method: method, Seed: seed})
		if err != nil {
			return false
		}
		if err := newP.Validate(g); err != nil {
			return false
		}
		var total int64
		for _, w := range newP.Weights(g) {
			total += w
		}
		return total == g.TotalVertexWeight()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 14}); err != nil {
		t.Fatal(err)
	}
}
