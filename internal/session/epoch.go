package session

import (
	"errors"
	"fmt"
	"math"

	"paragon/internal/dir"
	"paragon/internal/dyn"
	"paragon/internal/faultsim"
	"paragon/internal/obs"
	"paragon/internal/paragon"
	"paragon/internal/stream"
)

// This file is the session's state machine: batch ingestion on the
// caller's goroutine, epoch launch/join at schedule-determined points.
//
//	INGESTING ──trigger fires──▶ EPOCH IN FLIGHT ──join batch──▶ MERGE
//	    ▲                                                      │
//	    └???────commit (publish ok) / abort (fault) ◀──────────┘
//
// Between launch and join the epoch goroutine exclusively owns the
// snapshot-side state (pidx, ix, snap); the ingest side keeps mutating
// only the live-side state (adj, live, loads, score). The join receives
// ownership back through the result channel (a happens-before edge), so
// there is no lock and no timing-dependent interleaving anywhere.

// Ingest applies one batch: churn ops first, then arrivals, exactly in
// batch order. If an in-flight epoch's join point has been reached it is
// merged (blocking until the refinement finishes) before the batch is
// applied, and after the batch the trigger policy may launch a new
// epoch. Returns what happened, for the caller's bookkeeping.
func (s *Session) Ingest(b dyn.Batch) (BatchStats, error) {
	seq := s.batches
	s.batches++
	s.clock.Advance(s.cfg.BatchTicks)
	st := BatchStats{Seq: seq}

	if s.run != nil && seq >= s.run.joinBatch {
		committed, err := s.joinEpoch(seq)
		if err != nil {
			return st, err
		}
		st.Joined = true
		st.Committed = committed
	}

	for _, op := range b.Ops {
		added, removed := s.applyOp(op)
		switch {
		case added:
			st.OpsApplied++
			st.EdgesAdded++
		case removed:
			st.OpsApplied++
			st.EdgesRemoved++
		}
	}
	for _, a := range b.Arrivals {
		if s.placeArrival(a) {
			st.Arrivals++
		} else {
			st.Rejected++
		}
	}

	s.opsApplied += int64(st.OpsApplied)
	s.edgesAdded += int64(st.EdgesAdded)
	s.edgesRemoved += int64(st.EdgesRemoved)
	s.arrivals += int64(st.Arrivals)
	s.rejected += int64(st.Rejected)
	s.mx.batches.Inc()
	s.mx.ops.Add(int64(st.OpsApplied))
	s.mx.edgesAdded.Add(int64(st.EdgesAdded))
	s.mx.edgesRemoved.Add(int64(st.EdgesRemoved))
	s.mx.arrivals.Add(int64(st.Arrivals))
	s.mx.rejected.Add(int64(st.Rejected))
	s.mx.activeGauge.Set(float64(s.active))
	s.mx.edgesGauge.Set(float64(s.edges))

	if s.tr != nil {
		s.tr.Emit(obs.Event{Kind: obs.KindIngestBatch, Round: int32(seq),
			A: s.active, N: int64(st.OpsApplied), M: int64(st.Arrivals), X: s.skewness()})
	}

	if s.run == nil && seq >= s.cooldownUntil {
		d := s.cfg.Trigger.EvaluateScore(s.LiveScore(), s.alpha*s.baseComm, s.edges, s.churned)
		st.Trigger = d
		if d.Refine {
			s.launchEpoch(seq, d)
			st.Launched = true
		}
	}
	return st, nil
}

// Drain joins any in-flight epoch (blocking until it finishes) without
// ingesting anything. Call it at the end of a schedule so the final
// session state is independent of where the schedule stopped relative
// to the epoch lag.
func (s *Session) Drain() (committed bool, err error) {
	if s.run == nil {
		return false, nil
	}
	return s.joinEpoch(s.batches)
}

// applyOp applies one churn event to the live graph and the maintained
// score. Invalid ops (inactive or out-of-range endpoints, self-loops)
// and no-ops (adding an existing edge, removing an absent one) are
// skipped — the generator draws against the live view, but a schedule
// replayed onto a different base is still safe.
func (s *Session) applyOp(op dyn.EdgeOp) (added, removed bool) {
	u, v := op.U, op.V
	if u == v || u < 0 || v < 0 || u >= s.active || v >= s.active {
		return false, false
	}
	if op.Add {
		w := op.W
		if w <= 0 {
			w = 1
		}
		if s.hasEdge(u, v) {
			return false, false
		}
		s.adj[u] = append(s.adj[u], half{to: v, w: w})
		s.adj[v] = append(s.adj[v], half{to: u, w: w})
		s.edges++
		s.ewTotal += int64(w)
		s.scoreEdge(u, v, w, +1)
		s.markChurned(u, v)
		return true, false
	}
	w, ok := s.removeHalf(u, v)
	if !ok {
		return false, false
	}
	s.removeHalf(v, u)
	s.edges--
	s.ewTotal -= int64(w)
	s.scoreEdge(u, v, w, -1)
	s.markChurned(u, v)
	return false, true
}

// scoreEdge folds one edge's cut/comm contribution in (sign +1) or out
// (sign -1) of the maintained score, using ComputeScore's ordered
// convention c[p(min)][p(max)] so the incremental sum matches a full
// recompute bit for bit.
func (s *Session) scoreEdge(u, v, w int32, sign int) {
	pu, pv := s.live[u], s.live[v]
	if pu == pv {
		return
	}
	lo, hi := u, v
	if hi < lo {
		lo, hi = hi, lo
	}
	d := float64(w) * s.cfg.Costs[s.live[lo]][s.live[hi]]
	if sign < 0 {
		s.cut -= int64(w)
		s.comm -= d
	} else {
		s.cut += int64(w)
		s.comm += d
	}
}

func (s *Session) hasEdge(u, v int32) bool {
	a := s.adj[u]
	if len(s.adj[v]) < len(a) {
		a, u, v = s.adj[v], v, u
	}
	for _, h := range a {
		if h.to == v {
			return true
		}
	}
	return false
}

// removeHalf drops v from u's half-edge list (swap-delete; adjacency
// order is maintained data, not an invariant — every consumer iterates
// whatever order is current, which is itself deterministic).
func (s *Session) removeHalf(u, v int32) (w int32, ok bool) {
	a := s.adj[u]
	for i, h := range a {
		if h.to == v {
			last := len(a) - 1
			a[i] = a[last]
			s.adj[u] = a[:last]
			return h.w, true
		}
	}
	return 0, false
}

// markChurned records both endpoints dirty for the next epoch's
// Index.Retarget and counts the change against the trigger policy.
func (s *Session) markChurned(u, v int32) {
	s.churned++
	s.markDirty(u)
	s.markDirty(v)
}

func (s *Session) markDirty(v int32) {
	if !s.dirty.Get(v) {
		s.dirty.Set(v)
		s.dirtyList = append(s.dirtyList, v)
	}
}

// placeArrival activates the next vertex id and places it with the
// configured stream rule against the live loads. Returns false when the
// capacity is exhausted (the arrival is dropped and counted).
func (s *Session) placeArrival(a dyn.Arrival) bool {
	if s.active >= s.cap {
		return false
	}
	v := s.active

	// Resolve the arrival's valid neighbors: active, distinct, not v.
	nbrs := make([]int32, 0, len(a.Neighbors))
	wts := make([]int32, 0, len(a.Neighbors))
	for i, u := range a.Neighbors {
		if u < 0 || u >= s.active || u == v {
			continue
		}
		dup := false
		for _, prev := range nbrs {
			if prev == u {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		w := int32(1)
		if i < len(a.Weights) && a.Weights[i] > 0 {
			w = a.Weights[i]
		}
		nbrs = append(nbrs, u)
		wts = append(wts, w)
	}

	// Streaming capacity from the live totals: (1+eps)·ceil(W/k) like
	// the batch partitioners, except W grows with the stream.
	const vw = 1
	capF := (1 + s.cfg.Eps) * math.Ceil(float64(s.totalW+vw)/float64(s.k))
	if capF < 1 {
		capF = 1
	}
	alpha := 0.0
	if s.cfg.Placement == stream.PlaceFennel {
		capF *= 2 // Fennel's hard backstop is 2× the balance bound
		alpha = stream.FennelAlpha(s.k, float64(s.ewTotal), float64(s.totalW+vw))
	}
	best := s.placer.Place(nbrs, wts, s.live, s.floads, vw, capF, alpha)

	s.active++
	s.weight[v] = vw
	s.vsize[v] = 1
	s.live[v] = best
	s.loads[best] += vw
	s.floads[best] += vw
	s.totalW += vw
	s.placed = append(s.placed, v)
	s.markDirty(v)

	for i, u := range nbrs {
		w := wts[i]
		s.adj[v] = append(s.adj[v], half{to: u, w: w})
		s.adj[u] = append(s.adj[u], half{to: v, w: w})
		s.edges++
		s.ewTotal += int64(w)
		s.scoreEdge(v, u, w, +1)
		s.churned++
		s.markDirty(u)
	}
	return true
}

// launchEpoch freezes the live graph, hands the snapshot-side state to
// one background goroutine running the index-reusing refinement, and
// returns immediately — ingest continues concurrently until the join
// batch.
func (s *Session) launchEpoch(seq int64, d dyn.Decision) {
	launch := s.launches
	s.launches++
	s.mx.launches.Inc()

	// Catch the index up with arrivals since the last launch: each was
	// isolated in the previous snapshot, so Move is a pure bucket
	// transfer; Retarget below repairs ext/incident for every dirty
	// vertex against the new snapshot.
	for _, v := range s.placed {
		s.ix.Move(v, s.live[v])
	}
	s.snap = s.materialize()
	if err := s.ix.Retarget(s.snap, s.dirtyList); err != nil {
		// Impossible by construction (same capacity); fail loudly in
		// tests rather than corrupting silently.
		panic(fmt.Sprintf("session: retarget: %v", err))
	}
	for _, v := range s.dirtyList {
		s.dirty.Unset(v)
	}
	s.dirtyList = s.dirtyList[:0]
	s.placed = s.placed[:0]
	copy(s.pre, s.pidx.Assign)

	refCfg := s.cfg.Refine
	refCfg.Seed = int64(sessionMix(uint64(s.cfg.Refine.Seed) ^ sessionMix(uint64(launch)+0x51)))
	refCfg.Trace = nil     // the tracer is single-goroutine; the session owns it
	refCfg.Directory = nil // the session publishes at the merge, not per round
	refCfg.Metrics = s.cfg.Metrics
	refCfg.Fabric = nil
	refCfg.FaultRate = 0
	if s.cfg.FaultRate > 0 {
		refCfg.Fabric = faultsim.NewInjector(faultsim.Config{
			Seed: int64(sessionMix(uint64(s.cfg.FaultSeed) ^ sessionMix(uint64(launch)+0xe7))),
			Rate: s.cfg.FaultRate,
		})
	}

	if s.tr != nil {
		s.tr.Emit(obs.Event{Kind: obs.KindEpochTrigger, Round: int32(seq),
			A: int32(d.Code), X: triggerValue(d)})
		s.tr.Emit(obs.Event{Kind: obs.KindEpochLaunch, Round: int32(seq),
			A: int32(launch), N: s.snap.NumEdges()})
	}

	run := &epochRun{
		launch:    launch,
		joinBatch: seq + int64(s.cfg.EpochLagBatches),
		done:      make(chan epochResult, 1),
	}
	s.run = run
	g, p, c, ix := s.snap, s.pidx, s.cfg.Costs, s.ix
	go func() {
		// Between this launch and the join receive the goroutine
		// exclusively owns pidx/ix (the ingest side never touches them
		// while run != nil); the channel send/receive pair is the
		// happens-before edge of the handoff.
		st, err := paragon.RefineIndexed(g, p, c, refCfg, ix)
		run.done <- epochResult{st: st, err: err}
	}()
}

// triggerValue picks the metric that fired for the epoch_trigger event.
func triggerValue(d dyn.Decision) float64 {
	switch d.Code {
	case 0:
		return d.Skew
	case 1:
		return d.Churn
	case 2:
		return d.Staleness
	}
	return 0
}

// joinEpoch blocks until the in-flight epoch finishes, then merges it:
// diff the refined assignment against the launch state, publish the
// merged live assignment through the directory, and either commit
// (apply the diff to the live side, reset the trigger baseline) or
// abort (roll the index back; the previous directory epoch stays live).
func (s *Session) joinEpoch(seq int64) (committed bool, err error) {
	run := s.run
	res := <-run.done
	s.run = nil
	s.cooldownUntil = seq + int64(s.cfg.CooldownBatches)
	s.clock.Advance(res.st.Faults.VirtualTicks)

	// The refined moves: everything the epoch changed relative to its
	// launch snapshot. Vertices placed during the epoch are disjoint
	// from this set — they were inactive in the snapshot.
	diff := s.diffBuf[:0]
	for v := int32(0); v < s.cap; v++ {
		if s.pidx.Assign[v] != s.pre[v] {
			diff = append(diff, v)
		}
	}
	s.diffBuf = diff[:0]

	abort := func() {
		for _, v := range diff {
			s.ix.Move(v, s.pre[v])
		}
		s.aborts++
		s.mx.aborts.Inc()
		if s.tr != nil {
			s.tr.Emit(obs.Event{Kind: obs.KindEpochMerge, Round: int32(seq),
				A: 0, N: s.dirc.Epoch(), M: int64(len(diff))})
		}
	}

	if res.err != nil {
		abort()
		return false, fmt.Errorf("session: epoch %d refinement: %w", run.launch, res.err)
	}

	// Merge: the live assignment (including placements made while the
	// epoch ran) overlaid with the refined moves, published as one
	// atomic directory epoch.
	merged := s.merged
	copy(merged, s.live)
	for _, v := range diff {
		merged[v] = s.pidx.Assign[v]
	}
	if _, perr := s.dirc.PublishAssign(merged); perr != nil {
		if errors.Is(perr, dir.ErrPublishFailed) {
			abort()
			return false, nil
		}
		abort()
		return false, fmt.Errorf("session: epoch %d publish: %w", run.launch, perr)
	}

	// Commit: fold the refined moves into the live side.
	for _, v := range diff {
		w := int64(s.weight[v])
		from, to := s.live[v], s.pidx.Assign[v]
		s.loads[from] -= w
		s.loads[to] += w
		s.floads[from] -= float64(w)
		s.floads[to] += float64(w)
		s.live[v] = to
	}
	s.recomputeLive()
	s.baseComm = s.comm
	s.churned = 0
	s.commits++
	s.epochMoves += int64(len(diff))
	s.mx.commits.Inc()
	s.mx.moves.Add(int64(len(diff)))
	if s.tr != nil {
		s.tr.Emit(obs.Event{Kind: obs.KindEpochMerge, Round: int32(seq),
			A: 1, N: s.dirc.Epoch(), M: int64(len(diff)), X: s.alpha * s.comm})
	}
	return true, nil
}
