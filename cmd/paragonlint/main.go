// Command paragonlint runs the repo-specific static-analysis suite of
// internal/lint over the tree. It enforces the determinism contract of
// DESIGN.md: seeded runs must be bit-identical, so map-iteration order,
// ambient randomness, kernel clock reads, unsynchronized fan-out, and
// reorder-sensitive float accumulation are machine-checked instead of
// hoped for.
//
// Usage:
//
//	paragonlint [-list] [-checkers a,b] [packages]
//
// Package patterns follow the go tool's directory forms ("./...",
// "./internal/...", plain directories). With no pattern, ./... is
// assumed. The exit status is 1 when any diagnostic is reported, so the
// command slots directly into scripts/ci.sh between `go vet` and the
// tests. Findings are suppressed site by site with
// `//lint:ignore <checker> <reason>`.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"paragon/internal/lint"
)

// kernelPackages are the refinement kernels of the wallclock contract:
// pure functions of (graph, partitioning, seed). The baseline
// partitioners (aragonlb, zoltan, mizan) are in the set too — their
// refinement decisions are clock-free; the two Stats.Elapsed stopwatches
// they keep at the driver boundary carry reasoned lint:ignore
// suppressions. obs is in the set because the determinism contract now
// covers serialized trace/metrics output: a wall-clock read anywhere in
// the layer would break the byte-identity of trace files across worker
// counts. Only the experiment/driver layers (cmd/*, internal/exp,
// internal/bsp) stay outside.
var kernelPackages = map[string]bool{
	"paragon/internal/aragon":    true,
	"paragon/internal/aragonlb":  true,
	"paragon/internal/partition": true,
	"paragon/internal/exchange":  true,
	"paragon/internal/faultsim":  true,
	"paragon/internal/graph":     true,
	"paragon/internal/gen":       true,
	"paragon/internal/metis":     true,
	"paragon/internal/migrate":   true,
	"paragon/internal/mizan":     true,
	"paragon/internal/obs":       true,
	"paragon/internal/paragon":   true,
	"paragon/internal/zoltan":    true,
}

func main() {
	list := flag.Bool("list", false, "list the checkers and exit")
	sel := flag.String("checkers", "", "comma-separated subset of checkers to run (default all)")
	flag.Parse()

	checkers := []lint.Checker{
		lint.MapRange{},
		lint.GlobalRand{},
		lint.WallClock{Kernel: func(path string) bool { return kernelPackages[path] }},
		lint.LoopRace{},
		lint.FloatSum{},
	}
	if *list {
		for _, c := range checkers {
			fmt.Printf("%-11s %s\n", c.Name(), c.Doc())
		}
		return
	}
	if *sel != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*sel, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var subset []lint.Checker
		for _, c := range checkers {
			if want[c.Name()] {
				subset = append(subset, c)
			}
		}
		if len(subset) == 0 {
			fmt.Fprintf(os.Stderr, "paragonlint: no checker matches %q\n", *sel)
			os.Exit(2)
		}
		checkers = subset
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Load(cwd, patterns...)
	if err != nil {
		fatal(err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "paragonlint: type error (continuing): %v\n", terr)
		}
	}
	diags := lint.Run(pkgs, checkers)
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Printf("%s: %s: %s\n", pos, d.Checker, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "paragonlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paragonlint:", err)
	os.Exit(2)
}
