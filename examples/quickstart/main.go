// Quickstart: partition a graph, refine it with PARAGON against a
// modeled NUMA cluster, and compare the §3 quality metrics before and
// after — the smallest end-to-end use of the library, written entirely
// against the public API (package paragon at the module root).
package main

import (
	"fmt"
	"log"

	paragonlib "paragon"
)

func main() {
	// 1. A graph. Here: a synthetic social network (RMAT); in real use,
	//    load one with paragonlib.ReadMETISFile.
	g := paragonlib.RMAT(20000, 120000, 0.57, 0.19, 0.19, 1)
	g.UseDegreeWeights() // the paper's vertex weights/sizes: vertex degree

	// 2. A cluster model: two 20-core NUMA nodes behind one switch, one
	//    partition per core. λ=0: no contention penalty.
	cluster := paragonlib.PittCluster(2)
	k := cluster.TotalCores()
	costs, err := cluster.PartitionCostMatrix(k, 0)
	if err != nil {
		log.Fatal(err)
	}
	nodeOf, err := cluster.NodeOf(k)
	if err != nil {
		log.Fatal(err)
	}

	// 3. An initial decomposition from a streaming partitioner.
	p := paragonlib.DG(g, int32(k))
	fmt.Println("initial:", paragonlib.Evaluate(g, p, costs, 10))

	// 4. PARAGON refinement: 8 group servers, 8 shuffle rounds.
	cfg := paragonlib.DefaultConfig()
	cfg.Seed = 42
	cfg.NodeOf = nodeOf
	stats, err := paragonlib.Refine(g, p, costs, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("refined:", paragonlib.Evaluate(g, p, costs, 10))
	fmt.Printf("moved %d vertices (migration cost %.0f) in %s across %d rounds\n",
		stats.MigratedVertices, stats.MigrationCost, stats.RefinementTime.Round(0), stats.Rounds)
}
