package portfolio

import (
	"math/rand"

	"paragon/internal/aragon"
	"paragon/internal/graph"
	"paragon/internal/paragon"
	"paragon/internal/partition"
)

// memberScratch is everything one portfolio member needs to refine: a
// private Partitioning + Index + Refiner over the shared frozen graph,
// a seeded rng, and every per-round buffer, all reused across members.
// A scratch carries no member identity — run fully re-seeds it from the
// (assignment, seed) of whichever member it executes — which is what
// makes the member-id-keyed free list (member m runs on slot m mod
// workers) a pure scheduling choice with no effect on any member's
// output.
type memberScratch struct {
	g   *graph.Graph
	p   *partition.Partitioning
	ix  *partition.Index
	ref *aragon.Refiner
	src rand.Source
	rng *rand.Rand

	loads    []int64   // live per-partition weights during refinement
	perm     []int32   // grouping permutation scratch
	flat     []int32   // backing array for the grouping's member lists
	groups   [][]int32 // group headers over flat
	shuffle  []int     // ShuffleGroupsScratch permutation buffer
	pairs    [][2]int32
	mask     *partition.Bitset
	boundary []int32
	frontier []int32
	inPart   []bool  // combine: partitions touched by the disagreement
	parts    []int32 // combine: those partitions, ascending
	wbuf     []int64 // ComputeScoreInto weight buffer
}

// memberParams is the per-run parameter block handed to a scratch: the
// effective (defaulted) driver settings every member refines under, plus
// the member's own grouping seed.
type memberParams struct {
	seed     int64
	drp      int
	shuffles int
	khop     int
	alpha    float64
	maxLoad  int64
}

func newMemberScratch(g *graph.Graph, base []int32, k int32, acfg aragon.Config) *memberScratch {
	n := g.NumVertices()
	p := &partition.Partitioning{K: k, Assign: make([]int32, n)}
	copy(p.Assign, base) // realistic bucket sizes for the index prealloc
	ix := partition.BuildIndex(g, p)
	src := rand.NewSource(0)
	return &memberScratch{
		g:      g,
		p:      p,
		ix:     ix,
		ref:    aragon.NewRefiner(g, ix, acfg),
		src:    src,
		rng:    rand.New(src),
		loads:  make([]int64, k),
		perm:   make([]int32, k),
		flat:   make([]int32, k),
		groups: make([][]int32, 0, k/2+1),
		mask:   partition.NewBitset(n),
		inPart: make([]bool, k),
		wbuf:   make([]int64, k),
	}
}

// regroup deals the partitions into at most drp groups of >= 2, from a
// fresh uniform permutation — the same round-robin rule as the driver's
// randomGrouping, in allocation-free form (the permutation, the group
// headers, and the flat member backing are all reused scratch). Group gi
// holds perm[idx] for idx ≡ gi (mod m), laid out contiguously in flat.
func (scr *memberScratch) regroup(drp int) [][]int32 {
	k := int(scr.p.K)
	for i := 0; i < k; i++ {
		scr.perm[i] = int32(i)
	}
	scr.rng.Shuffle(k, func(i, j int) {
		scr.perm[i], scr.perm[j] = scr.perm[j], scr.perm[i]
	})
	m := drp
	if m > k/2 {
		m = k / 2
	}
	if m < 1 {
		m = 1
	}
	scr.groups = scr.groups[:0]
	off := 0
	for gi := 0; gi < m; gi++ {
		sz := (k - gi + m - 1) / m // members gi, gi+m, gi+2m, ...
		grp := scr.flat[off : off : off+sz]
		for idx := gi; idx < k; idx += m {
			grp = append(grp, scr.perm[idx])
		}
		scr.groups = append(scr.groups, grp)
		off += sz
	}
	return scr.groups
}

// run executes one member to completion: reseed the scratch from the
// base assignment and the member's seed, group, then refine 1+shuffles
// rounds of circle-tournament pairs, shuffling the grouping between
// rounds — Algorithm 1's inner loop without the group-server selection
// and shipping accounting, which only feed Stats. base doubles as the
// Eq. 3 migration reference.
func (scr *memberScratch) run(base []int32, c [][]float64, par memberParams) (moves int, gain float64) {
	copy(scr.p.Assign, base)
	scr.ix.Rebuild()
	scr.src.Seed(par.seed)
	scr.reloadWeights()
	groups := scr.regroup(par.drp)
	rounds := 1 + par.shuffles
	for round := 0; round < rounds; round++ {
		mv, gn := scr.refineRound(base, c, groups, par)
		moves += mv
		gain += gn
		if round+1 < rounds {
			scr.shuffle = paragon.ShuffleGroupsScratch(groups, scr.rng, round, scr.shuffle)
		}
	}
	return moves, gain
}

func (scr *memberScratch) reloadWeights() {
	for i := range scr.loads {
		scr.loads[i] = 0
	}
	for v := int32(0); v < scr.g.NumVertices(); v++ {
		scr.loads[scr.p.Assign[v]] += int64(scr.g.VertexWeight(v))
	}
}

// refineRound plays every group's circle tournament serially: groups
// ascending, rounds in schedule order, pairs in the schedule's emission
// order — a fixed traversal, so a member's output depends only on its
// (base, seed, params).
func (scr *memberScratch) refineRound(base []int32, c [][]float64, groups [][]int32, par memberParams) (moves int, gain float64) {
	allowed := scr.allowedMask(par.khop)
	for _, grp := range groups {
		m := len(grp)
		waves := m + (m & 1) - 1
		for t := 0; t < waves; t++ {
			scr.pairs = paragon.AppendTournamentRound(scr.pairs[:0], grp, t)
			for _, pr := range scr.pairs {
				res := scr.ref.RefinePair(base, pr[0], pr[1], c, scr.loads, par.maxLoad, allowed)
				moves += res.Moves
				gain += res.Gain
			}
		}
	}
	return moves, gain
}

// allowedMask builds the round's §5 movable-vertex mask: the k-hop
// expansion of the current boundary. At k-hop 0 it returns nil — the
// refiner then consults the index's live boundary counts directly, which
// is both cheaper and self-updating within the round.
func (scr *memberScratch) allowedMask(khop int) *partition.Bitset {
	if khop <= 0 {
		return nil
	}
	scr.boundary = scr.ix.AppendBoundary(scr.boundary[:0])
	scr.frontier = graph.ExpandFrontier(scr.g, scr.boundary, khop, scr.frontier[:0])
	scr.mask.ClearAll()
	for _, v := range scr.frontier {
		scr.mask.Set(v)
	}
	return scr.mask
}

// Pool owns the reusable state of portfolio refinement: one
// memberScratch per worker slot plus the per-member result buffers the
// coordinator reads after the join. Reusing one Pool across calls on the
// same (graph, k) keeps steady-state allocations flat in the member
// count — asserted by TestPortfolioPoolAllocsFlat.
type Pool struct {
	g       *graph.Graph
	k       int32
	acfg    aragon.Config
	scratch []*memberScratch

	// Per-member result buffers, indexed by member id: each is written
	// by exactly the worker that ran the member, then read only by the
	// coordinator after the join.
	assigns [][]int32
	scores  []partition.Score
	moves   []int
	gains   []float64
	cpu     []int64 // nanoseconds, Stats-only
	forfeit []bool
	seeds   []int64
}

// ensure sizes the pool for a run of size members on workers worker
// slots, rebuilding only what changed. A pool is bound to the (g, k,
// refiner-config) triple it last served; any mismatch rebuilds the
// scratch set.
func (pl *Pool) ensure(g *graph.Graph, base []int32, k int32, workers, size int, acfg aragon.Config) {
	if pl.g != g || pl.k != k || pl.acfg != acfg {
		pl.g, pl.k, pl.acfg = g, k, acfg
		pl.scratch = pl.scratch[:0]
		pl.assigns = pl.assigns[:0]
	}
	for len(pl.scratch) < workers {
		pl.scratch = append(pl.scratch, newMemberScratch(g, base, k, acfg))
	}
	for len(pl.assigns) < size {
		pl.assigns = append(pl.assigns, make([]int32, len(base)))
	}
	if cap(pl.scores) < size {
		pl.scores = make([]partition.Score, size)
		pl.moves = make([]int, size)
		pl.gains = make([]float64, size)
		pl.cpu = make([]int64, size)
		pl.forfeit = make([]bool, size)
		pl.seeds = make([]int64, size)
	}
	pl.scores = pl.scores[:size]
	pl.moves = pl.moves[:size]
	pl.gains = pl.gains[:size]
	pl.cpu = pl.cpu[:size]
	pl.forfeit = pl.forfeit[:size]
	pl.seeds = pl.seeds[:size]
	for m := 0; m < size; m++ {
		pl.scores[m] = partition.Score{}
		pl.moves[m] = 0
		pl.gains[m] = 0
		pl.cpu[m] = 0
		pl.forfeit[m] = false
		pl.seeds[m] = 0
	}
}
