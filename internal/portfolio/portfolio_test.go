package portfolio

import (
	"hash/fnv"
	"testing"
	"time"

	"paragon/internal/faultsim"
	"paragon/internal/gen"
	"paragon/internal/graph"
	"paragon/internal/obs"
	"paragon/internal/paragon"
	"paragon/internal/partition"
	"paragon/internal/stream"
	"paragon/internal/topology"
)

func assignHash(p *partition.Partitioning) uint64 {
	h := fnv.New64a()
	var buf [4]byte
	for _, a := range p.Assign {
		buf[0] = byte(a)
		buf[1] = byte(a >> 8)
		buf[2] = byte(a >> 16)
		buf[3] = byte(a >> 24)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// testInput builds the shared fixture: an RMAT graph with degree
// weights, a streaming initial decomposition, and a non-uniform
// architecture cost matrix.
func testInput(t *testing.T, n int32, m int64, k int32) (*graph.Graph, *partition.Partitioning, [][]float64) {
	t.Helper()
	g := gen.RMAT(n, m, 0.57, 0.19, 0.19, 5)
	g.UseDegreeWeights()
	cl := topology.PittCluster(2)
	c, err := cl.PartitionCostMatrix(int(k), 0)
	if err != nil {
		t.Fatal(err)
	}
	p := stream.DG(g, k, stream.DefaultOptions())
	return g, p, c
}

// zeroTimes strips the stopwatch fields — the only Stats content allowed
// to vary across worker counts.
func zeroTimes(st Stats) Stats {
	st.WallTime = 0
	st.CPUTime = 0
	for i := range st.Members {
		st.Members[i].CPUTime = 0
	}
	return st
}

func statsEqual(a, b Stats) bool {
	if a.Size != b.Size || a.Forfeits != b.Forfeits ||
		a.Winner != b.Winner || a.RunnerUp != b.RunnerUp ||
		a.CombineDiff != b.CombineDiff || a.CombineMoves != b.CombineMoves ||
		a.CombineGain != b.CombineGain || a.CombinedScore != b.CombinedScore ||
		a.CombineApplied != b.CombineApplied ||
		a.InputScore != b.InputScore || a.SelectedScore != b.SelectedScore ||
		len(a.Members) != len(b.Members) {
		return false
	}
	for i := range a.Members {
		if a.Members[i] != b.Members[i] {
			return false
		}
	}
	return true
}

// TestPortfolioDeterminism is the package's core contract: the selected
// assignment hash and every non-stopwatch Stats field are byte-identical
// at Workers 1, 2, and 8 — with and without fault injection — and the
// trace and metrics serializations match byte for byte too.
func TestPortfolioDeterminism(t *testing.T) {
	g, p0, c := testInput(t, 4000, 24000, 32)
	for _, faulty := range []bool{false, true} {
		name := "clean"
		if faulty {
			name = "faulty"
		}
		t.Run(name, func(t *testing.T) {
			var wantHash uint64
			var wantStats Stats
			var wantTrace, wantProm string
			for i, workers := range []int{1, 2, 8} {
				p := p0.Clone()
				cfg := paragon.Config{
					DRP: 4, Shuffles: 2, Seed: 7, Workers: workers,
					Portfolio: paragon.PortfolioConfig{Size: 5, CombineTop: 2},
					Trace:     obs.NewTracer(0),
					Metrics:   obs.NewRegistry(),
				}
				if faulty {
					cfg.FaultRate = 0.3
					cfg.FaultSeed = 3
				}
				st, err := Refine(g, p, c, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := p.Validate(g); err != nil {
					t.Fatal(err)
				}
				tr := serializeTrace(t, cfg.Trace)
				pm := serializeProm(t, cfg.Metrics)
				h := assignHash(p)
				if i == 0 {
					wantHash, wantStats, wantTrace, wantProm = h, st, tr, pm
					if faulty {
						if st.Forfeits == 0 {
							t.Fatalf("fault rate 0.3 over %d members fired no forfeit — fixture too weak", st.Size)
						}
						if st.Winner < 0 {
							t.Fatalf("all members forfeited — fixture too strong")
						}
					}
					continue
				}
				if h != wantHash {
					t.Errorf("workers=%d: selected hash %#x, want %#x (workers=1)", workers, h, wantHash)
				}
				if !statsEqual(zeroTimes(st), zeroTimes(wantStats)) {
					t.Errorf("workers=%d: stats diverged:\n got %+v\nwant %+v", workers, zeroTimes(st), zeroTimes(wantStats))
				}
				if tr != wantTrace {
					t.Errorf("workers=%d: trace serialization diverged", workers)
				}
				if pm != wantProm {
					t.Errorf("workers=%d: metrics serialization diverged", workers)
				}
			}
		})
	}
}

func serializeTrace(t *testing.T, tr *obs.Tracer) string {
	t.Helper()
	var sb stringsBuilder
	if err := obs.WriteJSONL(&sb, tr); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func serializeProm(t *testing.T, r *obs.Registry) string {
	t.Helper()
	var sb stringsBuilder
	if err := obs.WriteProm(&sb, r); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// stringsBuilder avoids importing strings just for Builder.
type stringsBuilder struct{ buf []byte }

func (sb *stringsBuilder) Write(p []byte) (int, error) {
	sb.buf = append(sb.buf, p...)
	return len(p), nil
}
func (sb *stringsBuilder) String() string { return string(sb.buf) }

// TestPortfolioCrashedMemberExclusion pins the forfeit semantics:
// members are independent, so crashing one member (via a scripted fate
// at round -1) must leave every survivor's score bit-identical to the
// clean run, exclude the victim from selection, and re-crown the best
// survivor — never silently substitute anything.
func TestPortfolioCrashedMemberExclusion(t *testing.T) {
	g, p0, c := testInput(t, 3000, 18000, 24)
	cfg := paragon.Config{
		DRP: 4, Shuffles: 1, Seed: 13,
		Portfolio: paragon.PortfolioConfig{Size: 4, CombineTop: 0},
	}
	p := p0.Clone()
	clean, err := Refine(g, p, c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Winner < 0 {
		t.Fatal("clean run selected no winner")
	}

	// Crash exactly the clean winner.
	cfgCrash := cfg
	cfgCrash.Fabric = faultsim.NewInjector(faultsim.Config{Script: []faultsim.Event{
		{Kind: faultsim.KindCrash, Round: -1, Index: clean.Winner},
	}})
	p = p0.Clone()
	crashed, err := Refine(g, p, c, cfgCrash)
	if err != nil {
		t.Fatal(err)
	}
	if crashed.Forfeits != 1 || !crashed.Members[clean.Winner].Forfeited {
		t.Fatalf("member %d should have forfeited: %+v", clean.Winner, crashed)
	}
	if crashed.Winner == clean.Winner {
		t.Fatalf("crashed member %d still selected", clean.Winner)
	}
	if (crashed.Members[clean.Winner].Score != partition.Score{}) {
		t.Fatalf("forfeited member carries a score: %+v", crashed.Members[clean.Winner].Score)
	}
	// Survivors are untouched by the crash, and the new winner is the
	// best of them under the same total order.
	best := -1
	for m, ms := range clean.Members {
		if m == clean.Winner {
			continue
		}
		if crashed.Members[m].Score != ms.Score || crashed.Members[m].Moves != ms.Moves {
			t.Fatalf("member %d diverged under another member's crash: %+v vs %+v", m, crashed.Members[m], ms)
		}
		if best < 0 || ms.Score.Better(clean.Members[best].Score) {
			best = m
		}
	}
	if crashed.Winner != best {
		t.Fatalf("winner after crash = %d, want best survivor %d", crashed.Winner, best)
	}
	if p.Validate(g) != nil || assignHash(p) == 0 {
		t.Fatal("crashed-run output invalid")
	}

	// All-forfeit: the input decomposition survives untouched.
	script := make([]faultsim.Event, 0, 4)
	for m := 0; m < 4; m++ {
		script = append(script, faultsim.Event{Kind: faultsim.KindCrash, Round: -1, Index: m})
	}
	cfgAll := cfg
	cfgAll.Fabric = faultsim.NewInjector(faultsim.Config{Script: script})
	p = p0.Clone()
	all, err := Refine(g, p, c, cfgAll)
	if err != nil {
		t.Fatal(err)
	}
	if all.Winner != -1 || all.Forfeits != 4 {
		t.Fatalf("all-forfeit run: %+v", all)
	}
	if assignHash(p) != assignHash(p0) {
		t.Fatal("all-forfeit run mutated the input decomposition")
	}
	if all.SelectedScore != all.InputScore {
		t.Fatalf("all-forfeit selected score %+v, want input score %+v", all.SelectedScore, all.InputScore)
	}
}

// TestPortfolioCombineNeverWorse is the combine operator's property
// test, across seeds: the output decomposition is valid, respects the
// balance bound the members refined under, and is never worse than the
// best single member under the partition.Score total order — whether or
// not the overlay was applied.
func TestPortfolioCombineNeverWorse(t *testing.T) {
	g, p0, c := testInput(t, 3000, 18000, 24)
	for seed := int64(0); seed < 6; seed++ {
		p := p0.Clone()
		cfg := paragon.Config{
			DRP: 4, Shuffles: 1, Seed: seed,
			Portfolio: paragon.PortfolioConfig{Size: 4, CombineTop: 2},
		}
		st, err := Refine(g, p, c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(g); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		best := st.Members[st.Winner].Score
		if best.Better(st.SelectedScore) {
			t.Fatalf("seed %d: selected %+v is worse than best member %+v", seed, st.SelectedScore, best)
		}
		if st.CombineDiff > 0 && best.Better(st.CombinedScore) {
			t.Fatalf("seed %d: combined %+v is worse than best member %+v", seed, st.CombinedScore, best)
		}
		// The selected score must describe the decomposition actually
		// left in p.
		got := partition.ComputeScore(g, p, p0.Assign, c, 10)
		if got != st.SelectedScore {
			t.Fatalf("seed %d: SelectedScore %+v does not match p's recomputed score %+v", seed, st.SelectedScore, got)
		}
		// Balance: no partition exceeds the bound the members refined
		// under, unless the input itself already violated it there.
		bound := partition.BalanceBound(g, p.K, 0.02)
		w := p.Weights(g)
		w0 := p0.Weights(g)
		for q, wq := range w {
			if wq > bound && wq > w0[q] {
				t.Fatalf("seed %d: partition %d weight %d exceeds bound %d (input was %d)", seed, q, wq, bound, w0[q])
			}
		}
	}
}

// TestPortfolioPoolAllocsFlat asserts the pooled-scratch contract:
// growing the member count on a warmed pool costs ~no additional
// allocations per run (the per-member scratch is reused via the
// member-id-keyed free list, and per-member results live in pooled
// buffers).
func TestPortfolioPoolAllocsFlat(t *testing.T) {
	g, p0, c := testInput(t, 2000, 10000, 16)
	measure := func(size int, pool *Pool) float64 {
		cfg := paragon.Config{
			DRP: 4, Shuffles: 1, Seed: 3, Workers: 2,
			Portfolio: paragon.PortfolioConfig{Size: size, CombineTop: 2},
		}
		p := p0.Clone()
		// Warm the pool (first run sizes every buffer).
		if _, err := RefineWithPool(g, p, c, cfg, pool); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(3, func() {
			pp := p0.Clone()
			if _, err := RefineWithPool(g, pp, c, cfg, pool); err != nil {
				t.Fatal(err)
			}
		})
	}
	var pool Pool
	small := measure(2, &pool)
	large := measure(8, &pool)
	// The fixed overhead (Stats.Members, runner, waitgroup, clone in the
	// closure) is allowed; what must NOT happen is per-member index or
	// refiner construction (thousands of allocs each). Six extra members
	// get a generous budget of 8 allocs each.
	if large > small+48 {
		t.Fatalf("allocs/op grew with member count: size=2 → %.0f, size=8 → %.0f", small, large)
	}
	t.Logf("allocs/op: size=2 %.0f, size=8 %.0f", small, large)
}

// TestPortfolioSelectedBeatsInput sanity-checks that the ensemble is
// doing its job on a refinable input: the selected cost improves on the
// input decomposition's cost.
func TestPortfolioSelectedBeatsInput(t *testing.T) {
	g, p0, c := testInput(t, 3000, 18000, 24)
	p := p0.Clone()
	st, err := Refine(g, p, c, paragon.Config{
		DRP: 4, Shuffles: 1, Seed: 1,
		Portfolio: paragon.PortfolioConfig{Size: 4, CombineTop: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.SelectedScore.Cost() >= st.InputScore.CommCost {
		t.Fatalf("selected cost %v did not improve on input comm cost %v",
			st.SelectedScore.Cost(), st.InputScore.CommCost)
	}
	if st.CPUTime <= 0 || st.WallTime <= 0 {
		t.Fatalf("stopwatches not populated: cpu=%v wall=%v", st.CPUTime, st.WallTime)
	}
	var sum time.Duration
	for _, ms := range st.Members {
		sum += ms.CPUTime
	}
	if sum != st.CPUTime {
		t.Fatalf("CPUTime %v != Σ member CPU %v", st.CPUTime, sum)
	}
}
