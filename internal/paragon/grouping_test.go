package paragon

import (
	"math/rand"
	"sort"
	"testing"
)

func TestSelectMasterAsymmetricMatrix(t *testing.T) {
	// Eq. 11 regression: the auxiliary exchange is bidirectional, so both
	// c[i][m] (servers push to the master) and c[m][i] (the master pushes
	// back) must count. Server 2 here is cheap to reach but expensive to
	// send from — summing only the inbound column crowned it master;
	// the bidirectional sum picks server 0.
	c := [][]float64{
		{0, 1, 1},
		{1, 0, 1},
		{8, 8, 0},
	}
	var inbound [3]float64
	for m := 0; m < 3; m++ {
		for i := 0; i < 3; i++ {
			if i != m {
				inbound[m] += c[i][m]
			}
		}
	}
	if !(inbound[2] < inbound[0] && inbound[2] < inbound[1]) {
		t.Fatal("test matrix no longer exercises the inbound-only bug")
	}
	if m := selectMaster(3, c); m != 0 {
		t.Fatalf("master = %d, want 0 (bidirectional cost); inbound-only would pick 2", m)
	}
}

func TestSelectMasterSymmetricUnchangedByDirectionFix(t *testing.T) {
	// On a symmetric matrix the bidirectional sum is exactly twice the
	// inbound sum — same argmin, so existing goldens stand. Cross-check
	// against a direct inbound-only argmin.
	c := [][]float64{
		{0, 2, 7, 4},
		{2, 0, 3, 5},
		{7, 3, 0, 1},
		{4, 5, 1, 0},
	}
	bestIn, bestInCost := 0, 0.0
	for m := 0; m < 4; m++ {
		var cost float64
		for i := 0; i < 4; i++ {
			if i != m {
				cost += c[i][m]
			}
		}
		if m == 0 || cost < bestInCost {
			bestIn, bestInCost = m, cost
		}
	}
	if m := selectMaster(4, c); int(m) != bestIn {
		t.Fatalf("master = %d on a symmetric matrix, inbound argmin = %d; direction fix must not move it", m, bestIn)
	}
}

func TestSelectGroupServersZeroWeightTieBreak(t *testing.T) {
	// Eq. 10 regression: with zero shipping mass every candidate costs 0,
	// and the old strict-less comparison left the initial s=0 in place —
	// every group got server 0, even groups that don't contain it. Ties
	// must break toward the lowest-id member of the group.
	k := 6
	c := make([][]float64, k)
	for i := range c {
		c[i] = make([]float64, k)
		for j := range c[i] {
			if i != j {
				c[i][j] = 1
			}
		}
	}
	ps := make([]int64, k) // no partition ships anything
	groups := [][]int32{{5, 3}, {2, 4}, {0, 1}}
	servers := SelectGroupServers(groups, ps, c, nil, len(groups))
	want := []int32{3, 2, 0}
	for gi := range groups {
		if servers[gi] != want[gi] {
			t.Fatalf("group %d (%v) server = %d, want %d (lowest in-group id on ties)",
				gi, groups[gi], servers[gi], want[gi])
		}
	}
}

func TestSelectGroupServersStrictImprovementStillWins(t *testing.T) {
	// The tie-break must not override a genuinely cheaper foreign server:
	// group {1, 2} ships mass and server 0 is free to reach while every
	// other candidate costs full price — 0 stays the right answer.
	c := [][]float64{
		{0, 1, 1},
		{0, 0, 1},
		{0, 1, 0},
	}
	ps := []int64{10, 10, 10}
	servers := SelectGroupServers([][]int32{{1, 2}}, ps, c, nil, 1)
	if servers[0] != 0 {
		t.Fatalf("server = %d, want the strictly cheaper foreign server 0", servers[0])
	}
}

func TestShuffleGroupsProperties(t *testing.T) {
	// ShuffleGroups must permute partitions between groups without ever
	// duplicating or dropping one, and without changing any group's size —
	// for even and odd group counts (the odd path has an extra rotation).
	for _, m := range []int{2, 3, 4, 5, 7} {
		for seed := int64(0); seed < 5; seed++ {
			rng := rand.New(rand.NewSource(seed))
			k := int32(4 * m) // uneven split: some groups get an extra partition
			groups := randomGrouping(k, m, rng)
			sizes := make([]int, len(groups))
			for gi, grp := range groups {
				sizes[gi] = len(grp)
			}
			for round := 0; round < 8; round++ {
				ShuffleGroups(groups, rng, round)
				var flat []int32
				for gi, grp := range groups {
					if len(grp) != sizes[gi] {
						t.Fatalf("m=%d seed=%d round=%d: group %d size %d, want %d",
							m, seed, round, gi, len(grp), sizes[gi])
					}
					flat = append(flat, grp...)
				}
				sort.Slice(flat, func(i, j int) bool { return flat[i] < flat[j] })
				if int32(len(flat)) != k {
					t.Fatalf("m=%d seed=%d round=%d: %d partitions, want %d", m, seed, round, len(flat), k)
				}
				for i, v := range flat {
					if v != int32(i) {
						t.Fatalf("m=%d seed=%d round=%d: partition %d missing or duplicated (flat[%d]=%d)",
							m, seed, round, i, i, v)
					}
				}
			}
		}
	}
}

// TestShuffleGroupsScratchMatchesPerm pins the draw-sequence equivalence
// of permInto and rand.Perm: the scratch form of ShuffleGroups must
// consume the rng stream identically to the allocating form, or every
// seeded run downstream of a shuffle (golden hashes included) drifts.
func TestShuffleGroupsScratchMatchesPerm(t *testing.T) {
	for n := 0; n <= 17; n++ {
		a := rand.New(rand.NewSource(int64(100 + n)))
		b := rand.New(rand.NewSource(int64(100 + n)))
		want := a.Perm(n)
		got := permInto(b, n, make([]int, 3))
		if len(got) != len(want) {
			t.Fatalf("n=%d: length %d, want %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: permInto %v, rand.Perm %v", n, got, want)
			}
		}
		// Both sources must be left in the same state.
		if a.Int63() != b.Int63() {
			t.Fatalf("n=%d: permInto consumed a different number of draws than rand.Perm", n)
		}
	}
	// And the two shuffle entry points must transform groups identically.
	mk := func() [][]int32 {
		return [][]int32{{0, 5}, {1, 6, 9}, {2, 7}, {3, 8}, {4}}
	}
	g1, g2 := mk(), mk()
	r1 := rand.New(rand.NewSource(42))
	r2 := rand.New(rand.NewSource(42))
	var scratch []int
	for round := 0; round < 6; round++ {
		ShuffleGroups(g1, r1, round)
		scratch = ShuffleGroupsScratch(g2, r2, round, scratch)
		for gi := range g1 {
			for i := range g1[gi] {
				if g1[gi][i] != g2[gi][i] {
					t.Fatalf("round %d: shuffle divergence at group %d: %v vs %v", round, gi, g1[gi], g2[gi])
				}
			}
		}
	}
}
