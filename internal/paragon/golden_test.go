package paragon

import (
	"hash/fnv"
	"testing"

	"paragon/internal/gen"
	"paragon/internal/partition"
	"paragon/internal/stream"
	"paragon/internal/topology"
)

// assignHash is an order-sensitive FNV-1a digest of a decomposition —
// two partitionings hash equal iff every vertex has the same owner.
func assignHash(p *partition.Partitioning) uint64 {
	h := fnv.New64a()
	var buf [4]byte
	for _, a := range p.Assign {
		buf[0] = byte(a)
		buf[1] = byte(a >> 8)
		buf[2] = byte(a >> 16)
		buf[3] = byte(a >> 24)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// TestGoldenRefineHashes pins the exact output of Refine for fixed seeds.
// The hashes were re-pinned once when the per-group serial pair loop was
// replaced by the tournament-wave scheduler (DESIGN.md §12): the wave
// schedule visits the same pairs in a different order and reads foreign
// vertices from the per-wave frozen view instead of the round-start
// snapshot, so the output is a different — equally valid, quality-checked
// — fixed point. mesh-uniform-drp8 kept its original hash: with groups
// of two the tournament degenerates to the old one-pair-per-group order.
// Any further drift is a regression: the scheduler contract is that the
// output is bit-identical for every Config.Workers value.
func TestGoldenRefineHashes(t *testing.T) {
	cases := []struct {
		name string
		want uint64
		run  func(t *testing.T) *partition.Partitioning
	}{
		{
			name: "rmat-arch-aware-khop1",
			want: 0x1caf529afa79f675,
			run: func(t *testing.T) *partition.Partitioning {
				g := gen.RMAT(5000, 30000, 0.57, 0.19, 0.19, 9)
				g.UseDegreeWeights()
				cl := topology.PittCluster(2)
				k := 32
				c, err := cl.PartitionCostMatrix(k, 0)
				if err != nil {
					t.Fatal(err)
				}
				nodeOf, err := cl.NodeOf(k)
				if err != nil {
					t.Fatal(err)
				}
				p := stream.DG(g, int32(k), stream.DefaultOptions())
				if _, err := Refine(g, p, c, Config{DRP: 4, Shuffles: 3, Seed: 77, KHop: 1, NodeOf: nodeOf}); err != nil {
					t.Fatal(err)
				}
				return p
			},
		},
		{
			name: "mesh-uniform-drp8",
			want: 0x2faf8c0c76b878fe,
			run: func(t *testing.T) *partition.Partitioning {
				g := gen.Mesh2D(80, 80)
				p := stream.HP(g, 16)
				if _, err := RefineUniform(g, p, Config{DRP: 8, Shuffles: 2, Seed: 5}); err != nil {
					t.Fatal(err)
				}
				return p
			},
		},
		{
			name: "ba-serial-drp1",
			want: 0xa88d2033a0264ad5,
			run: func(t *testing.T) *partition.Partitioning {
				g := gen.BarabasiAlbert(3000, 4, 3)
				g.UseDegreeWeights()
				p := stream.LDG(g, 8, stream.DefaultOptions())
				if _, err := RefineUniform(g, p, Config{DRP: 1, Shuffles: 1, Seed: 11}); err != nil {
					t.Fatal(err)
				}
				return p
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := assignHash(tc.run(t))
			t.Logf("assign hash %s = %#x", tc.name, got)
			if tc.want != 0 && got != tc.want {
				t.Fatalf("assign hash = %#x, want %#x — refinement output drifted from the scan-based reference", got, tc.want)
			}
		})
	}
}
