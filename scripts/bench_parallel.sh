#!/usr/bin/env bash
# Worker-scaling curve of the pair-level scheduler: runs
# BenchmarkParagonRoundWorkers (100k-vertex RMAT, k ∈ {32, 128},
# Workers ∈ {1, 2, 4, GOMAXPROCS}) and emits BENCH_parallel.json with
# ns/op, allocs/op, the speedup of each point over its own workers=1
# run, and the speedup over the committed pre-scheduler
# BenchmarkParagonRound numbers (per-group serial pair loops). The
# machine's core count is recorded: scaling beyond it is physically
# impossible, so the curve is only meaningful on the hardware that ran
# it.
#
# Usage: scripts/bench_parallel.sh [output.json]
#   BENCHTIME=10x scripts/bench_parallel.sh   # more iterations
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_parallel.json}"
benchtime="${BENCHTIME:-5x}"
count="${BENCHCOUNT:-3}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkParagonRoundWorkers' -count "$count" \
    -benchmem -benchtime "$benchtime" ./internal/paragon/ | tee "$tmp"

cores="$(go env GOMAXPROCS 2>/dev/null || true)"
cores="${cores:-$(getconf _NPROCESSORS_ONLN)}"
ncpu="$(getconf _NPROCESSORS_ONLN)"

# Lines look like:
#   BenchmarkParagonRoundWorkers/k=128/workers=4-8  5  93...  ns/op  ...  B/op  870 allocs/op
awk -v out="$out" -v benchtime="$benchtime" -v count="$count" -v ncpu="$ncpu" '
/^BenchmarkParagonRoundWorkers\// {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^BenchmarkParagonRoundWorkers\//, "", name)
    if (!(name in ns) || $3 + 0 < ns[name] + 0) { ns[name] = $3; allocs[name] = $7 }
    if (!(name in seen)) { seen[name] = 1; order[n++] = name }
}
END {
    if (n == 0) { print "bench_parallel.sh: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
    # Committed pre-scheduler baselines (BenchmarkParagonRound, per-group
    # serial pair loops, commit 0ca194f measured on this repo hardware).
    base["k=32"] = 100228698; base["k=128"] = 352939122
    basealloc["k=32"] = 1201; basealloc["k=128"] = 2309
    # workers=1 reference per k, for the self-relative scaling column.
    for (i = 0; i < n; i++) {
        name = order[i]
        split(name, parts, "/")
        if (parts[2] == "workers=1") w1[parts[1]] = ns[name]
    }
    printf("{\n")                                                > out
    printf("  \"benchtime\": \"min ns/op over %s runs of %s\",\n", count, benchtime) > out
    printf("  \"graph\": \"RMAT n=100000 m=800000 seed=42, degree weights, DRP 8, 1 round\",\n") > out
    printf("  \"hardware\": { \"online_cpus\": %s },\n", ncpu)   > out
    printf("  \"baseline\": \"committed BenchmarkParagonRound (per-group serial pair loops): k=32 100228698 ns/op / 1201 allocs, k=128 352939122 ns/op / 2309 allocs\",\n") > out
    printf("  \"note\": \"every point computes the bit-identical decomposition; only wall clock and worker scratch differ. speedup_vs_workers1 is bounded above by min(workers, online_cpus).\",\n") > out
    printf("  \"points\": {\n")                                  > out
    for (i = 0; i < n; i++) {
        name = order[i]
        split(name, parts, "/")
        k = parts[1]
        s1 = (w1[k] > 0) ? w1[k] / ns[name] : 0
        sb = (base[k] > 0) ? base[k] / ns[name] : 0
        printf("    \"%s\": { \"ns_op\": %s, \"allocs_op\": %s, \"speedup_vs_workers1\": %.2f, \"speedup_vs_committed_baseline\": %.2f, \"allocs_vs_committed_baseline\": \"%s/%s\" }%s\n",
               name, ns[name], allocs[name], s1, sb, allocs[name], basealloc[k], (i < n - 1) ? "," : "") > out
    }
    printf("  }\n}\n")                                           > out
}
' "$tmp"

echo "bench_parallel: wrote $out"
