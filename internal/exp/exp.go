// Package exp is the experiment harness: one function per table and
// figure of the paper's evaluation (§7), each returning a structured
// Table that cmd/experiments prints and bench_test.go exercises. The
// harness fixes the environments to scaled-down models of the paper's
// two platforms and takes a single size multiplier so the full suite can
// run anywhere from laptop benchmarks (scale ≈ 0.05) to the standard
// reproduction size (scale = 1).
package exp

import (
	"fmt"
	"strings"
	"time"

	"paragon/internal/bsp"
	"paragon/internal/graph"
	"paragon/internal/metis"
	"paragon/internal/paragon"
	"paragon/internal/parmetis"
	"paragon/internal/partition"
	"paragon/internal/stream"
	"paragon/internal/topology"
)

// ExperimentInfo names one runnable experiment.
type ExperimentInfo struct {
	ID    string
	What  string
	Paper string // the paper table/figure it regenerates, or "extension"
}

// Manifest enumerates every experiment cmd/experiments can run.
func Manifest() []ExperimentInfo {
	return []ExperimentInfo{
		{"fig7", "refinement time & quality vs degree of parallelism", "Figures 7a/7b"},
		{"fig8", "shuffle refinement rounds vs ARAGON", "Figure 8"},
		{"fig9", "initial partitioner quality sweep (also fig10/fig11)", "Figures 9-11"},
		{"table4", "BFS job execution time, all algorithms × clusters", "Table 4"},
		{"table5", "SSSP job execution time", "Table 5"},
		{"fig12", "BFS volume breakdown, PittMPICluster", "Figure 12"},
		{"fig13", "BFS volume breakdown, Gordon", "Figure 13"},
		{"fig14", "BFS JET across growing snapshots", "Figure 14"},
		{"fig15", "JET and refinement time vs graph scale (also fig16)", "Figures 15/16"},
		{"table1", "shared-resource contention matrix", "Table 1"},
		{"lambda", "contention degree sweep on both clusters", "§6 profiling"},
		{"ablations", "k-hop, server penalty, uniform-cost ablations", "DESIGN.md §6"},
		{"vertexcut", "vertex-cut partitioner comparison", "extension (§8)"},
		{"exchange", "directory vs region location exchange", "extension (§5)"},
		{"streamorder", "stream arrival-order sensitivity", "extension (§7.1)"},
		{"cutmodels", "edge-cut BSP vs vertex-cut GAS", "extension (§8)"},
		{"landscape", "repartitioner families under churn", "extension (Figure 1)"},
	}
}

// Table is a formatted experiment result.
type Table struct {
	ID     string // e.g. "fig7a", "table4"
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// CSV renders the table as RFC-4180 CSV (header row first). The table id
// and title go into a leading comment line.
func (t *Table) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n", t.ID, t.Title)
	writeCSVRow(&b, t.Header)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, cell := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(cell, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(cell)
		}
	}
	b.WriteByte('\n')
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// Env is an evaluation environment: a modeled cluster with the paper's
// per-platform settings for the contention degree λ (§6: 1 on the
// intra-node-bound PittMPICluster, 0 on the network-bound Gordon) and
// the BSP simulator's memory-contention factor.
type Env struct {
	Name       string
	Cluster    *topology.Cluster
	K          int     // partitions = cores used
	Lambda     float64 // Eq. 12 degree of contention for refinement
	Contention float64 // BSP memory-subsystem contention factor
	Alpha      float64 // Eq. 2 α
	GroupSize  int     // BSP message grouping
}

// PittEnv models n PittMPICluster nodes (2×10 cores each).
func PittEnv(nodes int) Env {
	return Env{
		Name:       "PittMPICluster",
		Cluster:    topology.PittCluster(nodes),
		K:          20 * nodes,
		Lambda:     1.0,
		Contention: 0.6,
		Alpha:      10,
		GroupSize:  8,
	}
}

// GordonEnv models n Gordon nodes (2×8 cores each).
func GordonEnv(nodes int) Env {
	return Env{
		Name:       "Gordon",
		Cluster:    topology.GordonCluster(nodes),
		K:          16 * nodes,
		Lambda:     0.0,
		Contention: 0.1,
		Alpha:      10,
		GroupSize:  8,
	}
}

// Matrix returns the partition cost matrix with the environment's λ.
func (e Env) Matrix() [][]float64 {
	m, err := e.Cluster.PartitionCostMatrix(e.K, e.Lambda)
	if err != nil {
		panic(fmt.Sprintf("exp: %v", err))
	}
	return m
}

// PlainMatrix returns the cost matrix without the contention penalty —
// the communication-heterogeneity-only view used for reporting comm
// costs comparably across λ settings.
func (e Env) PlainMatrix() [][]float64 {
	m, err := e.Cluster.PartitionCostMatrix(e.K, 0)
	if err != nil {
		panic(fmt.Sprintf("exp: %v", err))
	}
	return m
}

// NodeOf returns the rank→node mapping for Eq. 10.
func (e Env) NodeOf() []int {
	n, err := e.Cluster.NodeOf(e.K)
	if err != nil {
		panic(fmt.Sprintf("exp: %v", err))
	}
	return n
}

// BSPOptions returns the simulator settings for this environment.
func (e Env) BSPOptions() bsp.Options {
	return bsp.Options{MsgGroupSize: e.GroupSize, MemoryContention: e.Contention}
}

// Partitioner names an initial partitioner of Figures 9–11.
type Partitioner struct {
	Name string
	Run  func(g *graph.Graph, k int32) *partition.Partitioning
}

// InitialPartitioners returns HP, DG, LDG, and METIS in the paper's
// presentation order.
func InitialPartitioners() []Partitioner {
	return []Partitioner{
		{Name: "HP", Run: func(g *graph.Graph, k int32) *partition.Partitioning {
			return stream.HP(g, k)
		}},
		{Name: "DG", Run: func(g *graph.Graph, k int32) *partition.Partitioning {
			return stream.DG(g, k, stream.DefaultOptions())
		}},
		{Name: "LDG", Run: func(g *graph.Graph, k int32) *partition.Partitioning {
			return stream.LDG(g, k, stream.DefaultOptions())
		}},
		{Name: "METIS", Run: func(g *graph.Graph, k int32) *partition.Partitioning {
			return metis.Partition(g, k, metis.Options{Seed: 100})
		}},
	}
}

// RefineParagon applies PARAGON with the paper's microbenchmark settings
// (drp and shuffles both 8 unless overridden) and returns the stats.
func RefineParagon(g *graph.Graph, p *partition.Partitioning, env Env, drp, shuffles int, seed int64) paragon.Stats {
	cfg := paragon.DefaultConfig()
	cfg.DRP = drp
	cfg.Shuffles = shuffles
	cfg.Seed = seed
	cfg.Alpha = env.Alpha
	cfg.NodeOf = env.NodeOf()
	st, err := paragon.Refine(g, p, env.Matrix(), cfg)
	if err != nil {
		panic(fmt.Sprintf("exp: paragon refine: %v", err))
	}
	return st
}

// paragonCfg builds a PARAGON config for the environment.
func paragonCfg(env Env, drp, shuffles int, seed int64) paragon.Config {
	cfg := paragon.DefaultConfig()
	cfg.DRP = drp
	cfg.Shuffles = shuffles
	cfg.Seed = seed
	cfg.Alpha = env.Alpha
	cfg.NodeOf = env.NodeOf()
	return cfg
}

// refineWith runs PARAGON with an explicit config against the
// environment's matrix.
func refineWith(g *graph.Graph, p *partition.Partitioning, env Env, cfg paragon.Config) paragon.Stats {
	st, err := paragon.Refine(g, p, env.Matrix(), cfg)
	if err != nil {
		panic(fmt.Sprintf("exp: paragon refine: %v", err))
	}
	return st
}

// RefineUniParagon applies the UNIPARAGON baseline (uniform costs).
func RefineUniParagon(g *graph.Graph, p *partition.Partitioning, env Env, drp, shuffles int, seed int64) paragon.Stats {
	cfg := paragon.DefaultConfig()
	cfg.DRP = drp
	cfg.Shuffles = shuffles
	cfg.Seed = seed
	cfg.Alpha = env.Alpha
	st, err := paragon.RefineUniform(g, p, cfg)
	if err != nil {
		panic(fmt.Sprintf("exp: uniparagon refine: %v", err))
	}
	return st
}

// RepartitionParMetis applies the ParMETIS-style scratch-remap baseline.
func RepartitionParMetis(g *graph.Graph, p *partition.Partitioning, seed int64) (*partition.Partitioning, time.Duration) {
	start := time.Now()
	out, err := parmetis.Repartition(g, p, parmetis.Options{Method: parmetis.ScratchRemap, Seed: seed})
	if err != nil {
		panic(fmt.Sprintf("exp: parmetis: %v", err))
	}
	return out, time.Since(start)
}

func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func f0(x float64) string { return fmt.Sprintf("%.0f", x) }
func secs(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}
