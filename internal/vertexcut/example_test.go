package vertexcut_test

import (
	"fmt"

	"paragon/internal/gen"
	"paragon/internal/vertexcut"
)

// Example compares the replication factor of random edge hashing against
// HDRF on a power-law graph.
func Example() {
	g := gen.RMAT(4000, 24000, 0.57, 0.19, 0.19, 3)
	random := vertexcut.Random(g, 16)
	hdrf := vertexcut.HDRF(g, 16, 2)
	fmt.Println("HDRF replicates less:", hdrf.ReplicationFactor() < random.ReplicationFactor())
	fmt.Println("HDRF balanced:", hdrf.LoadImbalance() < 1.05)
	// Output:
	// HDRF replicates less: true
	// HDRF balanced: true
}
