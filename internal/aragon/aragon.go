// Package aragon implements ARAGON, the serial architecture-aware graph
// partition refinement algorithm of Zheng et al. (BigGraphs'14) that
// PARAGON parallelizes. ARAGON is a Fiduccia–Mattheyses variant operating
// on one partition pair (Pi, Pj) at a time: it repeatedly moves the
// vertex with maximal gain between the two partitions, where gain is the
// reduction in architecture-aware communication plus migration cost
// (Eq. 5 of the paper):
//
//	g(v) = g_std(v) + g_topo(v) + g_mig(v)
//
//	g_std  = α · (d_ext(v,Pj) − d_ext(v,Pi)) · c(Pi,Pj)          (Eq. 6)
//	g_topo = α · Σ_{k≠i,j} d_ext(v,Pk) · (c(Pi,Pk) − c(Pj,Pk))   (Eq. 8)
//	g_mig  = vs(v) · (c(Pi,Pk0) − c(Pj,Pk0)),  Pk0 = original owner (Eq. 9)
//
// Unlike standard FM (uniform costs), ARAGON must consider *all* boundary
// vertices of the pair — a vertex with no neighbor in the partner
// partition can still gain via g_topo and g_mig — and must visit all
// n(n−1)/2 partition pairs because any pair may improve under nonuniform
// costs.
package aragon

import (
	"fmt"

	"paragon/internal/graph"
	"paragon/internal/partition"
)

// Config tunes the refinement.
type Config struct {
	// Alpha is the relative importance of communication vs. migration
	// cost — the number of supersteps between refinements (default 10,
	// as in the paper's evaluation).
	Alpha float64
	// MaxImbalance is the allowed load imbalance eps (default 0.02).
	MaxImbalance float64
	// BadMoveLimit stops a pair refinement after this many consecutive
	// non-improving moves (default 64).
	BadMoveLimit int
}

// WithDefaults fills in the paper's default parameters.
func (c Config) WithDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 10
	}
	if c.MaxImbalance == 0 {
		c.MaxImbalance = 0.02
	}
	if c.BadMoveLimit == 0 {
		c.BadMoveLimit = 64
	}
	return c
}

// Result summarizes one refinement.
type Result struct {
	Moves     int     // vertices whose partition changed
	Gain      float64 // total gain realized (cost reduction, Eq. 5 sum)
	PairsSeen int     // partition pairs refined
}

// Gain computes Eq. 5 for moving v from its current partition to
// partition j, given the original decomposition orig (for the migration
// term) and the cost matrix c. Exposed for tests and for PARAGON's group
// refinement.
func Gain(g *graph.Graph, p *partition.Partitioning, orig []int32, v, j int32, c [][]float64, alpha float64) float64 {
	i := p.Assign[v]
	if i == j {
		return 0
	}
	dext := partition.ExternalDegrees(g, p, v)
	return gainFromDegrees(g, dext, orig, v, i, j, c, alpha)
}

// gainFromDegrees computes Eq. 5 given precomputed per-partition external
// degrees for v.
func gainFromDegrees(g *graph.Graph, dext []int64, orig []int32, v, i, j int32, c [][]float64, alpha float64) float64 {
	// Eq. 6: impact on the (Pi, Pj) cut.
	gStd := alpha * float64(dext[j]-dext[i]) * c[i][j]
	// Eq. 8: impact on v's communication with every other partition.
	var gTopo float64
	for k := int32(0); k < int32(len(dext)); k++ {
		if k == i || k == j || dext[k] == 0 {
			continue
		}
		gTopo += float64(dext[k]) * (c[i][k] - c[j][k])
	}
	gTopo *= alpha
	// Eq. 9: impact on migration cost relative to the original owner.
	k0 := orig[v]
	gMig := float64(g.VertexSize(v)) * (c[i][k0] - c[j][k0])
	return gStd + gTopo + gMig
}

// RefinePair refines the pair (pi, pj) of p in place, moving vertices
// between the two partitions while the balance bound admits it. orig is
// the decomposition before any refinement (migration reference); loads
// is the current per-partition weight vector, updated in place. It
// returns the number of moves kept and the gain realized.
func RefinePair(g *graph.Graph, p *partition.Partitioning, orig []int32, pi, pj int32, c [][]float64, loads []int64, maxLoad int64, cfg Config) Result {
	return RefinePairAllowed(g, p, orig, pi, pj, c, loads, maxLoad, cfg, nil)
}

// RefinePairAllowed is RefinePair restricted to an explicit candidate
// mask: only vertices with a set bit in allowed may move. PARAGON uses
// this to model the k-hop boundary shipping of §5 — a group server only
// holds the vertices its group members shipped, so only those can
// migrate. A nil mask admits every boundary vertex of the pair (full
// ARAGON behavior).
//
// This is the single-pair convenience form: it builds a fresh
// partition.Index (O(|V|+|E|)) for the one call. Sweeps over many pairs
// should build the index once and drive a Refiner instead, as Refine and
// PARAGON's group servers do.
func RefinePairAllowed(g *graph.Graph, p *partition.Partitioning, orig []int32, pi, pj int32, c [][]float64, loads []int64, maxLoad int64, cfg Config, allowed *partition.Bitset) Result {
	r := NewRefiner(g, partition.BuildIndex(g, p), cfg)
	return r.RefinePair(orig, pi, pj, c, loads, maxLoad, allowed)
}

// Refine runs full ARAGON: it applies RefinePair to every pair of the
// n-way decomposition sequentially and returns the aggregate result. p is
// modified in place; the original assignment is captured up front as the
// migration reference.
func Refine(g *graph.Graph, p *partition.Partitioning, c [][]float64, cfg Config) (Result, error) {
	if err := p.Validate(g); err != nil {
		return Result{}, fmt.Errorf("aragon: %w", err)
	}
	if int32(len(c)) < p.K {
		return Result{}, fmt.Errorf("aragon: cost matrix %d×· smaller than k=%d", len(c), p.K)
	}
	cfg = cfg.WithDefaults()
	orig := append([]int32(nil), p.Assign...)
	loads := p.Weights(g)
	maxLoad := partition.BalanceBound(g, p.K, cfg.MaxImbalance)
	// One index serves all k(k−1)/2 pairs: every move (and rollback)
	// delta-maintains it, so per-pair candidate enumeration is
	// O(|P_i| + |P_j|) instead of a full-vertex scan.
	ref := NewRefiner(g, partition.BuildIndex(g, p), cfg)
	var total Result
	for i := int32(0); i < p.K; i++ {
		for j := i + 1; j < p.K; j++ {
			r := ref.RefinePair(orig, i, j, c, loads, maxLoad, nil)
			total.Moves += r.Moves
			total.Gain += r.Gain
			total.PairsSeen += r.PairsSeen
		}
	}
	return total, nil
}

// floatHeap is a lazy max-heap over candidate indices keyed by float
// gain, with stale-entry invalidation like the metis gain heap.
type floatHeap struct {
	idx []int32
	g   []float64
}

func newFloatHeap(capHint int) *floatHeap {
	return &floatHeap{idx: make([]int32, 0, capHint), g: make([]float64, 0, capHint)}
}

func (h *floatHeap) len() int { return len(h.idx) }

// reset empties the heap, keeping its backing storage for reuse.
func (h *floatHeap) reset() {
	h.idx = h.idx[:0]
	h.g = h.g[:0]
}

func (h *floatHeap) push(i int32, gain float64) {
	h.idx = append(h.idx, i)
	h.g = append(h.g, gain)
	c := len(h.idx) - 1
	for c > 0 {
		p := (c - 1) / 2
		if h.g[p] >= h.g[c] {
			break
		}
		h.swap(p, c)
		c = p
	}
}

func (h *floatHeap) pop() (int32, float64) {
	i, g := h.idx[0], h.g[0]
	last := len(h.idx) - 1
	h.idx[0], h.g[0] = h.idx[last], h.g[last]
	h.idx, h.g = h.idx[:last], h.g[:last]
	c := 0
	for {
		l, r, s := 2*c+1, 2*c+2, c
		if l < last && h.g[l] > h.g[s] {
			s = l
		}
		if r < last && h.g[r] > h.g[s] {
			s = r
		}
		if s == c {
			break
		}
		h.swap(c, s)
		c = s
	}
	return i, g
}

func (h *floatHeap) popValid(gains []float64, moved []bool) (int32, float64, bool) {
	for h.len() > 0 {
		i, g := h.pop()
		if moved[i] || gains[i] != g {
			continue
		}
		return i, g, true
	}
	return 0, 0, false
}

func (h *floatHeap) swap(i, j int) {
	h.idx[i], h.idx[j] = h.idx[j], h.idx[i]
	h.g[i], h.g[j] = h.g[j], h.g[i]
}
