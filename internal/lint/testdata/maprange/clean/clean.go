// Package fixture holds map-range loops that are provably
// order-insensitive or explicitly suppressed; nothing here may be
// reported.
package fixture

import "sort"

// Draining a map with delete touches every key exactly once regardless
// of order.
func drain(m map[int]int) {
	for k := range m {
		delete(m, k)
	}
}

// Per-key writes: each iteration writes only the slot indexed by its
// own key, so the final state is order-independent.
func scatter(updates map[int32]int32, locations []int32) {
	for v, loc := range updates {
		locations[v] = loc
	}
}

// Collect-then-sort: keys leave the loop in map order but are sorted
// before anyone observes them.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Commutative integer accumulation is exact, so order cannot matter.
func totalLen(m map[string][]int) int {
	n := 0
	for _, list := range m {
		n += len(list)
	}
	return n
}

// An order-sensitive loop silenced with a reasoned directive.
func anyKey(m map[int]int) int {
	//lint:ignore maprange any key works here; the caller only probes emptiness
	for k := range m {
		return k
	}
	return -1
}
