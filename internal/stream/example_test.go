package stream_test

import (
	"fmt"

	"paragon/internal/gen"
	"paragon/internal/partition"
	"paragon/internal/stream"
	"paragon/internal/topology"
)

// Example compares the three §7 initial partitioners on a mesh: greedy
// streaming beats hashing on edge cut, and LDG stays balanced.
func Example() {
	g := gen.Mesh2D(24, 24)
	uni := topology.UniformMatrix(4)

	hp := stream.HP(g, 4)
	dg := stream.DG(g, 4, stream.DefaultOptions())
	ldg := stream.LDG(g, 4, stream.DefaultOptions())

	fmt.Println("DG beats HP on cut:",
		partition.CommCost(g, dg, uni, 1) < partition.CommCost(g, hp, uni, 1))
	fmt.Println("LDG balanced within 10%:", partition.Skewness(g, ldg) < 1.1)
	// Output:
	// DG beats HP on cut: true
	// LDG balanced within 10%: true
}
