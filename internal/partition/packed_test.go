package partition

import (
	"math/rand"
	"testing"
)

func TestPackedRoundTrip(t *testing.T) {
	for _, k := range []int32{1, 2, 3, 7, 8, 64, 100, 128, 1 << 20} {
		rng := rand.New(rand.NewSource(int64(k)))
		n := int32(1000)
		assign := make([]int32, n)
		for v := range assign {
			assign[v] = int32(rng.Intn(int(k)))
		}
		p := PackAssign(assign, k)
		for v := int32(0); v < n; v++ {
			if got := p.Get(v); got != assign[v] {
				t.Fatalf("k=%d: Get(%d) = %d, want %d", k, v, got, assign[v])
			}
		}
		back := p.AppendAssign(nil)
		for v := range assign {
			if back[v] != assign[v] {
				t.Fatalf("k=%d: AppendAssign[%d] = %d, want %d", k, v, back[v], assign[v])
			}
		}
	}
}

func TestPackedSetUpdates(t *testing.T) {
	p := NewPacked(130, 100) // 7 bits/entry, 9 entries/word: exercises word crossings
	p.Set(0, 99)
	p.Set(1, 1)
	p.Set(9, 42) // second word
	p.Set(129, 7)
	if p.Get(0) != 99 || p.Get(1) != 1 || p.Get(9) != 42 || p.Get(129) != 7 {
		t.Fatalf("reads after writes wrong: %d %d %d %d", p.Get(0), p.Get(1), p.Get(9), p.Get(129))
	}
	p.Set(0, 0)
	if p.Get(0) != 0 || p.Get(1) != 1 {
		t.Fatal("overwrite clobbered a neighboring field")
	}
}

func TestPackedHashAndClone(t *testing.T) {
	a := PackAssign([]int32{0, 1, 2, 3, 2, 1, 0}, 4)
	b := PackAssign([]int32{0, 1, 2, 3, 2, 1, 0}, 4)
	if a.Hash64() != b.Hash64() {
		t.Fatal("equal contents hash differently")
	}
	c := a.Clone()
	c.Set(3, 0)
	if a.Get(3) != 3 {
		t.Fatal("Clone shares storage with its source")
	}
	if c.Hash64() == a.Hash64() {
		t.Fatal("differing contents hash equal")
	}
	// Shape is part of the digest: same words, different n/k must differ.
	d := PackAssign([]int32{0, 1, 2, 3, 2, 1, 0}, 5)
	if d.Hash64() == a.Hash64() {
		t.Fatal("k not folded into the hash")
	}
}

func TestPackedPanics(t *testing.T) {
	p := NewPacked(4, 4)
	for _, fn := range []func(){
		func() { p.Get(-1) },
		func() { p.Get(4) },
		func() { p.Set(0, 4) },
		func() { p.Set(0, -1) },
		func() { p.Set(4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-range access did not panic")
				}
			}()
			fn()
		}()
	}
}
