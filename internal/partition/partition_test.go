package partition

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"paragon/internal/gen"
	"paragon/internal/graph"
	"paragon/internal/topology"
)

// paperGraph returns the Figure 3–5 graph with the Figure 3 decomposition:
// P1 = {a,b,c,d} (N1), P2 = {e,f,g} (N2), P3 = {h,i,j} (N3).
// Vertices: a=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7 i=8 j=9.
func paperGraph() (*graph.Graph, *Partitioning) {
	b := graph.NewBuilder(10)
	edges := [][2]int32{
		{0, 1}, {0, 2}, {0, 9},
		{1, 2}, {1, 3},
		{2, 3},
		{3, 4},
		{4, 5}, {4, 6},
		{5, 6},
		{7, 8}, {7, 9}, {8, 9},
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g := b.Build()
	p := New(3, 10)
	for v, part := range []int32{0, 0, 0, 0, 1, 1, 1, 2, 2, 2} {
		p.Assign[v] = part
	}
	return g, p
}

func TestNewAndValidate(t *testing.T) {
	g, p := paperGraph()
	if err := p.Validate(g); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	bad := New(2, 10)
	bad.Assign[3] = 7
	if err := bad.Validate(g); err == nil {
		t.Fatal("expected out-of-range error")
	}
	short := New(2, 4)
	if err := short.Validate(g); err == nil {
		t.Fatal("expected length error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k < 1")
		}
	}()
	New(0, 5)
}

func TestMovePanicsOutOfRange(t *testing.T) {
	_, p := paperGraph()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Move(0, 99)
}

func TestWeightsCountsSizes(t *testing.T) {
	g, p := paperGraph()
	w := p.Weights(g)
	if w[0] != 4 || w[1] != 3 || w[2] != 3 {
		t.Fatalf("unit weights = %v, want [4 3 3]", w)
	}
	cnt := p.Counts(g)
	if cnt[0] != 4 || cnt[1] != 3 || cnt[2] != 3 {
		t.Fatalf("counts = %v", cnt)
	}
	g.UseDegreeWeights()
	w2 := p.Weights(g)
	s2 := p.Sizes(g)
	for i := range w2 {
		if w2[i] != s2[i] {
			t.Fatal("degree weights and sizes must agree")
		}
	}
}

func TestIncidentEdges(t *testing.T) {
	g, p := paperGraph()
	ie := p.IncidentEdges(g)
	// Partition degrees: a=3,b=3,c=3,d=3 => 12; e=3,f=2,g=2 => 7; h=2,i=2,j=3 => 7.
	if ie[0] != 12 || ie[1] != 7 || ie[2] != 7 {
		t.Fatalf("incident edges = %v, want [12 7 7]", ie)
	}
}

func TestEdgeCutFigure3(t *testing.T) {
	g, p := paperGraph()
	// Figure 3 has 4 cut edges: d-e (P1-P2), a-j (P1-P3), and the paper
	// counts 4 total; our encoding cuts: d-e, a-j => plus none else... count:
	// edges across: {0,9} P1-P3, {3,4} P1-P2. That's 2 — but the paper's
	// Figure 3 shows 4 cut edges because its drawn decomposition differs.
	// We assert our encoding's exact cut.
	if cut := EdgeCut(g, p); cut != 2 {
		t.Fatalf("edge cut = %d, want 2 for this encoding", cut)
	}
	// Moving a to P3 (with j) changes the cut: a-j healed, a-b and a-c cut.
	p2 := p.Clone()
	p2.Move(0, 2)
	if cut := EdgeCut(g, p2); cut != 3 {
		t.Fatalf("edge cut after move = %d, want 3", cut)
	}
}

func TestCommCostUniformEqualsAlphaCut(t *testing.T) {
	g, p := paperGraph()
	c := topology.UniformMatrix(3)
	cost := CommCost(g, p, c, 10)
	if cost != 10*float64(EdgeCut(g, p)) {
		t.Fatalf("uniform comm cost %v != α·cut %v", cost, 10*float64(EdgeCut(g, p)))
	}
}

func TestCommCostPaperMatrix(t *testing.T) {
	g, p := paperGraph()
	c := topology.PaperExampleMatrix()
	// Cut edges: a-j (P1-P3, cost 6), d-e (P1-P2, cost 1). α=1 => 7.
	if cost := CommCost(g, p, c, 1); cost != 7 {
		t.Fatalf("comm cost = %v, want 7", cost)
	}
	// Move a to P2 (Figure 5's key move): cut edges become a-b (1·1),
	// a-c (1·1), a-j (P2-P3 = 1), d-e (P1-P2 = 1) => 4.
	p2 := p.Clone()
	p2.Move(0, 1)
	if cost := CommCost(g, p2, c, 1); cost != 4 {
		t.Fatalf("comm cost after moving a to P2 = %v, want 4", cost)
	}
}

func TestMigrationCost(t *testing.T) {
	g, old := paperGraph()
	now := old.Clone()
	c := topology.PaperExampleMatrix()
	if mc := MigrationCost(g, old, now, c); mc != 0 {
		t.Fatalf("no-move migration cost = %v", mc)
	}
	now.Move(0, 1) // a: P1 -> P2, vs(a)=1, c=1
	if mc := MigrationCost(g, old, now, c); mc != 1 {
		t.Fatalf("migration cost = %v, want 1", mc)
	}
	now.Move(9, 0) // j: P3 -> P1, c(P3,P1)=6
	if mc := MigrationCost(g, old, now, c); mc != 7 {
		t.Fatalf("migration cost = %v, want 7", mc)
	}
}

func TestSkewness(t *testing.T) {
	g, p := paperGraph()
	// Unit weights: loads 4,3,3; avg 10/3; skew = 4/(10/3) = 1.2.
	if s := Skewness(g, p); math.Abs(s-1.2) > 1e-9 {
		t.Fatalf("skewness = %v, want 1.2", s)
	}
	// Perfectly balanced single-partition case.
	p1 := New(1, 10)
	if s := Skewness(g, p1); s != 1 {
		t.Fatalf("1-way skewness = %v, want 1", s)
	}
}

func TestSkewnessZeroWeights(t *testing.T) {
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1)
	g := b.Build()
	g.SetVertexWeights([]int32{0, 0})
	p := New(2, 2)
	p.Assign[1] = 1
	if s := Skewness(g, p); s != 1 {
		t.Fatalf("zero-weight skewness = %v, want 1 (defined fallback)", s)
	}
}

func TestExternalDegrees(t *testing.T) {
	g, p := paperGraph()
	// Vertex a (0): neighbors b,c in P1; j in P3.
	d := ExternalDegrees(g, p, 0)
	if d[0] != 2 || d[1] != 0 || d[2] != 1 {
		t.Fatalf("d_ext(a) = %v, want [2 0 1]", d)
	}
	// Vertex e (4): neighbor d in P1, f,g in P2.
	d = ExternalDegrees(g, p, 4)
	if d[0] != 1 || d[1] != 2 || d[2] != 0 {
		t.Fatalf("d_ext(e) = %v, want [1 2 0]", d)
	}
}

func TestBoundary(t *testing.T) {
	g, p := paperGraph()
	if !IsBoundary(g, p, 0) { // a has j in P3
		t.Fatal("a must be boundary")
	}
	if IsBoundary(g, p, 1) { // b's neighbors a,c,d all in P1
		t.Fatal("b must be interior")
	}
	bv := BoundaryVertices(g, p)
	// P1 boundary: a (j), d (e). P2: e (d). P3: j (a).
	if len(bv[0]) != 2 || len(bv[1]) != 1 || len(bv[2]) != 1 {
		t.Fatalf("boundary sets = %v", bv)
	}
}

func TestBalanceBound(t *testing.T) {
	g, _ := paperGraph() // 10 unit-weight vertices
	if b := BalanceBound(g, 2, 0.0); b != 5 {
		t.Fatalf("bound = %d, want 5", b)
	}
	// ceil(10/3)=4, ×1.02 = 4.08, truncated to 4.
	if b := BalanceBound(g, 3, 0.02); b != 4 {
		t.Fatalf("bound = %d, want 4", b)
	}
}

func TestEvaluate(t *testing.T) {
	g, p := paperGraph()
	q := Evaluate(g, p, topology.PaperExampleMatrix(), 1)
	if q.EdgeCut != 2 || q.CommCost != 7 {
		t.Fatalf("Evaluate = %+v", q)
	}
	if math.Abs(q.Skewness-1.2) > 1e-9 {
		t.Fatalf("Evaluate skewness = %v", q.Skewness)
	}
}

// Property: for random graphs and random partitionings, CommCost with a
// uniform matrix equals α·EdgeCut, and both are invariant under relabeling
// partitions by a permutation.
func TestQuickUniformCommEqualsCut(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(120, 400, seed)
		k := int32(rng.Intn(6) + 2)
		p := New(k, g.NumVertices())
		for v := range p.Assign {
			p.Assign[v] = int32(rng.Intn(int(k)))
		}
		c := topology.UniformMatrix(int(k))
		if CommCost(g, p, c, 3) != 3*float64(EdgeCut(g, p)) {
			return false
		}
		// Relabel partitions with a permutation: cut must be unchanged.
		perm := rng.Perm(int(k))
		p2 := p.Clone()
		for v := range p2.Assign {
			p2.Assign[v] = int32(perm[p.Assign[v]])
		}
		return EdgeCut(g, p) == EdgeCut(g, p2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: total weight is conserved across partitions, and skewness is
// always >= 1.
func TestQuickWeightConservationAndSkew(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(100, 300, seed)
		g.UseDegreeWeights()
		k := int32(rng.Intn(7) + 1)
		p := New(k, g.NumVertices())
		for v := range p.Assign {
			p.Assign[v] = int32(rng.Intn(int(k)))
		}
		w := p.Weights(g)
		var sum int64
		for _, wi := range w {
			sum += wi
		}
		if sum != g.TotalVertexWeight() {
			return false
		}
		return Skewness(g, p) >= 1-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: MigrationCost is zero iff the assignments are identical, and
// symmetric matrices make it symmetric in old/new.
func TestQuickMigrationSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(80, 200, seed)
		k := int32(4)
		old := New(k, g.NumVertices())
		now := New(k, g.NumVertices())
		for v := range old.Assign {
			old.Assign[v] = int32(rng.Intn(int(k)))
			now.Assign[v] = int32(rng.Intn(int(k)))
		}
		c := topology.UniformMatrix(int(k))
		ab := MigrationCost(g, old, now, c)
		ba := MigrationCost(g, now, old, c)
		if ab != ba {
			return false
		}
		same := MigrationCost(g, old, old, c)
		return same == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHopCut(t *testing.T) {
	g, p := paperGraph()
	// Uniform 1-hop distance: HopCut equals EdgeCut.
	ones := func(i, j int32) int { return 1 }
	if HopCut(g, p, ones) != EdgeCut(g, p) {
		t.Fatal("unit-hop HopCut must equal EdgeCut")
	}
	// Figure 6-like distances: P1-P3 is 6 hops, others 1.
	hops := func(i, j int32) int {
		if (i == 0 && j == 2) || (i == 2 && j == 0) {
			return 6
		}
		return 1
	}
	// Cut edges in the fixture: a-j (P1-P3, 6 hops) and d-e (P1-P2, 1).
	if got := HopCut(g, p, hops); got != 7 {
		t.Fatalf("HopCut = %d, want 7", got)
	}
}
