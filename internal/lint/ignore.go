package lint

import (
	"go/token"
	"strings"
)

// Suppression directives.
//
// A finding is silenced by a comment of the form
//
//	//lint:ignore <checker>[,<checker>...] <reason>
//
// placed either at the end of the offending line or alone on the line
// directly above it. The checker list may be "all". The reason is
// mandatory: a suppression without a stated justification is itself
// reported as a diagnostic, so every escape from the determinism
// contract is documented at the site that needs it.

type ignoreEntry struct {
	checkers []string // lower-case checker names, or ["all"]
	pos      token.Position
	// used flips when the directive actually suppresses a finding; the
	// staleignore checker reports directives that never do.
	used bool
}

type ignoreSet struct {
	// byLine maps filename -> line -> directives on that line. Entries are
	// pointers so suppression can record usage.
	byLine    map[string]map[int][]*ignoreEntry
	malformed []Diagnostic
	// entries holds every directive in collection order, for the
	// staleness sweep.
	entries []*ignoreEntry
}

const ignorePrefix = "//lint:ignore"

// collectIgnores scans every comment of the package for //lint:ignore
// directives. known holds the valid checker names; a directive naming an
// unknown checker is reported as malformed rather than silently inert.
func collectIgnores(pkg *Package, known map[string]bool) *ignoreSet {
	ig := &ignoreSet{byLine: map[string]map[int][]*ignoreEntry{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:ignored — not our directive
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					ig.malformed = append(ig.malformed, Diagnostic{
						Pos:     pos,
						Checker: "lint",
						Message: "malformed //lint:ignore: want \"//lint:ignore <checker> <reason>\"",
					})
					continue
				}
				var checkers []string
				bad := ""
				for _, name := range strings.Split(fields[0], ",") {
					name = strings.ToLower(strings.TrimSpace(name))
					if name != "all" && !known[name] {
						bad = name
						break
					}
					checkers = append(checkers, name)
				}
				if bad != "" {
					ig.malformed = append(ig.malformed, Diagnostic{
						Pos:     pos,
						Checker: "lint",
						Message: "//lint:ignore names unknown checker \"" + bad + "\"",
					})
					continue
				}
				lines := ig.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]*ignoreEntry{}
					ig.byLine[pos.Filename] = lines
				}
				e := &ignoreEntry{checkers: checkers, pos: pos}
				lines[pos.Line] = append(lines[pos.Line], e)
				ig.entries = append(ig.entries, e)
			}
		}
	}
	return ig
}

// suppresses reports whether a directive on the diagnostic's line, or on
// the line directly above it, covers the named checker. A matching
// directive is marked used for the staleness sweep.
func (ig *ignoreSet) suppresses(checker string, pos token.Position) bool {
	lines := ig.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, e := range lines[line] {
			for _, name := range e.checkers {
				if name == "all" || name == checker {
					e.used = true
					return true
				}
			}
		}
	}
	return false
}

// StaleIgnore keeps the suppression inventory honest: every
// //lint:ignore directive must still silence a live diagnostic. A
// directive that matches nothing is dead weight — the code it excused
// was fixed or deleted, and leaving it in place would silently swallow
// the next real finding on that line. The runner performs the sweep
// itself (Check is empty) because staleness is only known after every
// other checker has run against the package's suppression state.
type StaleIgnore struct{}

func (StaleIgnore) Name() string { return "staleignore" }
func (StaleIgnore) Doc() string {
	return "every //lint:ignore directive must match a live diagnostic"
}
func (StaleIgnore) Check(*Package) []Diagnostic { return nil }

// stale reports the directives never consulted by a suppression match.
// collectIgnores already rejected directives naming inactive checkers,
// so every surviving entry was judgeable by the active suite.
func (ig *ignoreSet) stale() []Diagnostic {
	var out []Diagnostic
	for _, e := range ig.entries {
		if e.used {
			continue
		}
		out = append(out, Diagnostic{
			Pos:     e.pos,
			Checker: "staleignore",
			Message: "stale //lint:ignore " + strings.Join(e.checkers, ",") + ": no live diagnostic at this site",
		})
	}
	return out
}
