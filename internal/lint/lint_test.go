package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata expect.txt golden files")

// fixtureCheckers is the full suite with permissive scope predicates:
// fixture packages are always "deterministic" and always "kernel". The
// interprocedural state (call graph, taint) is built per fixture: the
// checked package's exported functions are the kernel roots, and the
// analysis set adds whatever helper packages the fixture imported from
// beneath its own directory (the crosspkg case).
func fixtureCheckers(loader *Loader, pkg *Package) []Checker {
	taint := &Taint{}
	if pkg != nil {
		analysis := []*Package{pkg}
		for _, p := range loader.AllLoaded() {
			if strings.HasPrefix(p.Path, pkg.Path+"/") {
				analysis = append(analysis, p)
			}
		}
		graph := BuildCallGraph(analysis)
		roots := graph.ExportedRoots(pkg.Path)
		taint = NewTaint(graph, roots, []*Package{pkg}, analysis)
	}
	return []Checker{
		MapRange{}, GlobalRand{}, WallClock{}, LoopRace{}, FloatSum{},
		SharedWrite{}, ReduceOrder{}, taint, StaleIgnore{},
	}
}

// TestFixtures loads every fixture package under testdata and compares
// the diagnostics against the expect.txt golden next to it. Layout is
// testdata/<checker>/<case>/ (only that checker's findings are golden)
// or testdata/<name>/ directly (all findings are golden — used by the
// suppress fixture, whose lint-malformed diagnostics come from the
// framework itself). Golden lines are "file.go:line:col: checker:
// message", so a drifting position fails the test. Regenerate with
// go test ./internal/lint -run TestFixtures -update.
func TestFixtures(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	roots, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, root := range roots {
		if !root.IsDir() {
			continue
		}
		name := root.Name()
		rootDir := filepath.Join("testdata", name)
		var caseDirs []string
		if hasGoFiles(rootDir) {
			caseDirs = []string{rootDir}
		} else {
			subs, err := os.ReadDir(rootDir)
			if err != nil {
				t.Fatal(err)
			}
			for _, sub := range subs {
				if sub.IsDir() && hasGoFiles(filepath.Join(rootDir, sub.Name())) {
					caseDirs = append(caseDirs, filepath.Join(rootDir, sub.Name()))
				}
			}
		}
		for _, dir := range caseDirs {
			dir := dir
			ran++
			t.Run(strings.TrimPrefix(filepath.ToSlash(dir), "testdata/"), func(t *testing.T) {
				pkg, err := loader.LoadDir(dir)
				if err != nil {
					t.Fatal(err)
				}
				if pkg == nil {
					t.Fatalf("no package in %s", dir)
				}
				for _, terr := range pkg.TypeErrors {
					t.Errorf("fixture does not type-check: %v", terr)
				}
				diags := Run([]*Package{pkg}, fixtureCheckers(loader, pkg))
				var lines []string
				for _, d := range diags {
					// The suppress fixture goldens everything (framework
					// "lint" diagnostics included); checker fixtures golden
					// only their own checker so cross-checker noise does not
					// couple the files.
					if name != "suppress" && d.Checker != name {
						continue
					}
					lines = append(lines, fmt.Sprintf("%s:%d:%d: %s: %s",
						filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Checker, d.Message))
				}
				got := strings.Join(lines, "\n")
				if got != "" {
					got += "\n"
				}
				golden := filepath.Join(dir, "expect.txt")
				if *update {
					if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				wantBytes, err := os.ReadFile(golden)
				if err != nil {
					t.Fatalf("missing golden (run with -update): %v", err)
				}
				if want := string(wantBytes); got != want {
					t.Errorf("diagnostics mismatch\n--- want\n%s--- got\n%s", want, got)
				}
			})
		}
	}
	if ran < 19 {
		t.Fatalf("only %d fixture cases ran; expected the full testdata tree", ran)
	}
}

// TestHitFixturesReport guards against a silently pass-everything
// checker: every hits fixture must produce at least one finding of its
// own checker, and every clean fixture none.
func TestHitFixturesReport(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	names := []string{
		"maprange", "globalrand", "wallclock", "looprace", "floatsum",
		"sharedwrite", "reduceorder", "taint", "staleignore",
	}
	for _, name := range names {
		for _, kind := range []string{"hits", "clean"} {
			dir := filepath.Join("testdata", name, kind)
			pkg, err := loader.LoadDir(dir)
			if err != nil {
				t.Fatalf("%s: %v", dir, err)
			}
			// Run the full suite so directives naming sibling checkers
			// resolve, but count only this checker's findings.
			count := 0
			for _, d := range Run([]*Package{pkg}, fixtureCheckers(loader, pkg)) {
				if d.Checker == name {
					count++
				}
			}
			if kind == "hits" && count == 0 {
				t.Errorf("%s: checker %s found nothing in its hits fixture", dir, name)
			}
			if kind == "clean" && count != 0 {
				t.Errorf("%s: checker %s reported %d findings in its clean fixture", dir, name, count)
			}
		}
	}
}

// TestLoaderModule pins the module discovery and pattern expansion.
func TestLoaderModule(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if got := loader.Module(); got != "paragon" {
		t.Fatalf("Module() = %q, want %q", got, "paragon")
	}
	pkgs, err := loader.Load(".", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load(./...) from internal/lint returned %d packages, want 1 (testdata must be skipped)", len(pkgs))
	}
	if pkgs[0].Path != "paragon/internal/lint" {
		t.Fatalf("package path = %q, want %q", pkgs[0].Path, "paragon/internal/lint")
	}
	if len(pkgs[0].TypeErrors) != 0 {
		t.Fatalf("internal/lint has type errors: %v", pkgs[0].TypeErrors)
	}
}
