package dir

import (
	"errors"
	"fmt"

	"paragon/internal/migrate"
	"paragon/internal/obs"
	"paragon/internal/partition"
)

// The journal is a flat byte log of self-checking records:
//
//	[0]     magic 0xD7
//	[1]     type: 1 base, 2 prepare, 3 commit
//	[2:10]  epoch, int64 LE (0 for base)
//	[10:14] payload length, uint32 LE
//	[14:]   payload
//	[...+8] FNV-1a checksum of everything above, uint64 LE
//
// Base payload:    k int32, n int32, shardBits uint32, then the packed
//                  epoch-0 assignment words (partition.Packed layout).
// Prepare payload: the epoch's delta in migrate.Plan binary form.
// Commit payload:  the committed snapshot's AssignHash, uint64 LE.
//
// Recovery parses sequentially and stops at the first record that is
// incomplete or fails its checksum — the torn-tail model: a crash can
// truncate the log mid-record, and whatever the truncation cuts, the
// surviving prefix decodes to exactly the last committed epoch. A
// structural violation *inside* a well-checksummed prefix (prepare
// before base, commit without its prepare, a commit hash that does not
// match the replayed delta) is not a torn tail — the writer cannot
// produce it — and recovery fails loudly instead of guessing.

const (
	recMagic   byte = 0xD7
	recBase    byte = 1
	recPrepare byte = 2
	recCommit  byte = 3

	recHeaderLen  = 14
	recTrailerLen = 8
	recMaxPayload = 1 << 30
)

// ErrJournalCorrupt marks a journal whose well-checksummed prefix is
// structurally impossible — not mere truncation, which Recover absorbs
// silently, but bytes the directory's writer could never have produced.
var ErrJournalCorrupt = errors.New("directory journal corrupt beyond torn-tail repair")

const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// fnvFold folds one 64-bit quantity into an FNV-1a state, byte by byte
// (little-endian), matching partition's digest discipline.
func fnvFold(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime
		x >>= 8
	}
	return h
}

// fnvSum digests a byte slice.
func fnvSum(b []byte) uint64 {
	h := uint64(fnvOffset)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

func appendUint32(dst []byte, x uint32) []byte {
	return append(dst, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
}

func appendUint64(dst []byte, x uint64) []byte {
	dst = appendUint32(dst, uint32(x))
	return appendUint32(dst, uint32(x>>32))
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func le64(b []byte) uint64 {
	return uint64(le32(b)) | uint64(le32(b[4:]))<<32
}

// appendRecordBytes frames one journal record around payload.
func appendRecordBytes(dst []byte, typ byte, epoch int64, payload []byte) []byte {
	start := len(dst)
	dst = append(dst, recMagic, typ)
	dst = appendUint64(dst, uint64(epoch))
	dst = appendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	return appendUint64(dst, fnvSum(dst[start:]))
}

// appendBaseRecord frames the epoch-0 record: full assignment in packed
// form plus the shard geometry, so a journal is self-describing and
// Recover needs no out-of-band configuration to rebuild the snapshots.
func appendBaseRecord(dst []byte, assign []int32, k int32, shardBits uint) []byte {
	p := partition.PackAssign(assign, k)
	payload := make([]byte, 0, 12+8*len(p.Words()))
	payload = appendUint32(payload, uint32(k))
	payload = appendUint32(payload, uint32(len(assign)))
	payload = appendUint32(payload, uint32(shardBits))
	for _, w := range p.Words() {
		payload = appendUint64(payload, w)
	}
	return appendRecordBytes(dst, recBase, 0, payload)
}

// parseRecord decodes the record at the head of data. ok is false when
// the bytes cannot be a whole valid record — too short, bad magic,
// unknown type, oversized payload, or checksum mismatch — which recovery
// uniformly treats as the torn tail.
func parseRecord(data []byte) (typ byte, epoch int64, payload []byte, size int, ok bool) {
	if len(data) < recHeaderLen+recTrailerLen {
		return 0, 0, nil, 0, false
	}
	if data[0] != recMagic {
		return 0, 0, nil, 0, false
	}
	typ = data[1]
	if typ < recBase || typ > recCommit {
		return 0, 0, nil, 0, false
	}
	plen := int(le32(data[10:14]))
	if plen < 0 || plen > recMaxPayload {
		return 0, 0, nil, 0, false
	}
	size = recHeaderLen + plen + recTrailerLen
	if len(data) < size {
		return 0, 0, nil, 0, false
	}
	if fnvSum(data[:recHeaderLen+plen]) != le64(data[recHeaderLen+plen:size]) {
		return 0, 0, nil, 0, false
	}
	epoch = int64(le64(data[2:10]))
	payload = data[recHeaderLen : recHeaderLen+plen]
	return typ, epoch, payload, size, true
}

// decodeBasePayload unpacks the epoch-0 record.
func decodeBasePayload(payload []byte) (assign []int32, k int32, shardBits uint, err error) {
	if len(payload) < 12 {
		return nil, 0, 0, fmt.Errorf("dir: base payload %d bytes, want >= 12: %w", len(payload), ErrJournalCorrupt)
	}
	k = int32(le32(payload))
	n := int32(le32(payload[4:]))
	shardBits = uint(le32(payload[8:]))
	if k < 1 || n < 0 || shardBits < 6 || shardBits > 24 {
		return nil, 0, 0, fmt.Errorf("dir: base geometry k=%d n=%d shardBits=%d: %w", k, n, shardBits, ErrJournalCorrupt)
	}
	wordBytes := payload[12:]
	if len(wordBytes)%8 != 0 {
		return nil, 0, 0, fmt.Errorf("dir: base words not 8-byte aligned: %w", ErrJournalCorrupt)
	}
	words := make([]uint64, len(wordBytes)/8)
	for i := range words {
		words[i] = le64(wordBytes[8*i:])
	}
	p, perr := partition.PackedFromWords(n, k, words)
	if perr != nil {
		return nil, 0, 0, fmt.Errorf("dir: base record: %v: %w", perr, ErrJournalCorrupt)
	}
	return p.AppendAssign(nil), k, shardBits, nil
}

// Recover rebuilds a directory from journal bytes: replay the base
// record and every prepare+commit pair in order, stopping at the first
// torn (incomplete or checksum-failing) record. The result serves the
// last committed epoch bit-identically to the directory that wrote the
// journal — a prepare without its commit (a publish that crashed between
// prepare and flip) is skipped exactly as the live directory skipped its
// flip. The surviving prefix becomes the recovered directory's journal;
// torn tail bytes are discarded and counted.
//
// opts supplies the runtime wiring (fabric, clock, observability) of the
// recovered instance; shard geometry comes from the journal itself.
func Recover(journal []byte, opts Options) (*Directory, error) {
	opts = opts.withDefaults()
	var (
		cur          *Snapshot
		pendingPlan  *migrate.Plan
		pendingEpoch int64
		off          int
	)
	for off < len(journal) {
		typ, epoch, payload, size, ok := parseRecord(journal[off:])
		if !ok {
			break // torn tail: everything from off on is discarded
		}
		switch typ {
		case recBase:
			if cur != nil {
				return nil, fmt.Errorf("dir: duplicate base record: %w", ErrJournalCorrupt)
			}
			assign, k, shardBits, err := decodeBasePayload(payload)
			if err != nil {
				return nil, err
			}
			opts.ShardBits = int(shardBits)
			cur = buildSnapshot(assign, k, shardBits, 0)
		case recPrepare:
			if cur == nil {
				return nil, fmt.Errorf("dir: prepare record before base: %w", ErrJournalCorrupt)
			}
			if epoch != cur.epoch+1 {
				return nil, fmt.Errorf("dir: prepare for epoch %d after committed epoch %d: %w", epoch, cur.epoch, ErrJournalCorrupt)
			}
			plan, err := migrate.DecodePlan(payload)
			if err != nil {
				return nil, fmt.Errorf("dir: prepare for epoch %d: %v: %w", epoch, err, ErrJournalCorrupt)
			}
			pendingPlan, pendingEpoch = plan, epoch
		case recCommit:
			if pendingPlan == nil || epoch != pendingEpoch {
				return nil, fmt.Errorf("dir: commit for epoch %d without matching prepare: %w", epoch, ErrJournalCorrupt)
			}
			if len(payload) != 8 {
				return nil, fmt.Errorf("dir: commit payload %d bytes, want 8: %w", len(payload), ErrJournalCorrupt)
			}
			next, err := cur.apply(pendingPlan.Moves)
			if err != nil {
				return nil, fmt.Errorf("dir: replaying epoch %d: %v: %w", epoch, err, ErrJournalCorrupt)
			}
			if got, want := next.AssignHash(), le64(payload); got != want {
				return nil, fmt.Errorf("dir: epoch %d replay hash %#x != journaled %#x: %w", epoch, got, want, ErrJournalCorrupt)
			}
			cur = next
			pendingPlan = nil
		}
		off += size
	}
	if cur == nil {
		return nil, fmt.Errorf("dir: journal holds no complete base record: %w", ErrJournalCorrupt)
	}
	torn := len(journal) - off
	d := &Directory{
		opts: opts, fab: opts.Fabric, clk: opts.Clock, tr: opts.Trace,
		mx: newDirMetrics(opts.Metrics), fsync: opts.FsyncTicks,
	}
	d.j = append([]byte(nil), journal[:off]...)
	d.cur.Store(cur)
	d.mx.recoveries.Inc()
	d.mx.tornBytes.Add(int64(torn))
	d.mx.epoch.Set(float64(cur.epoch))
	if d.tr != nil {
		d.tr.Emit(obs.Event{Kind: obs.KindDirRecovered, Round: -1, N: cur.epoch, M: int64(torn)})
	}
	return d, nil
}
