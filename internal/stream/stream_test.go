package stream

import (
	"testing"
	"testing/quick"

	"paragon/internal/gen"
	"paragon/internal/graph"
	"paragon/internal/partition"
)

func TestHPCoversAllPartitions(t *testing.T) {
	g := gen.ErdosRenyi(1000, 3000, 1)
	p := HP(g, 8)
	if err := p.Validate(g); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	counts := p.Counts(g)
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("partition %d empty under hashing", i)
		}
	}
	// Hashing is roughly uniform: no partition should be more than 2x avg.
	avg := float64(g.NumVertices()) / 8
	for i, c := range counts {
		if float64(c) > 2*avg || float64(c) < avg/2 {
			t.Fatalf("partition %d has %d vertices, avg %.0f — hash too skewed", i, c, avg)
		}
	}
}

func TestHPDeterministic(t *testing.T) {
	g := gen.ErdosRenyi(300, 900, 2)
	p1, p2 := HP(g, 5), HP(g, 5)
	for v := range p1.Assign {
		if p1.Assign[v] != p2.Assign[v] {
			t.Fatal("HP must be deterministic")
		}
	}
}

func TestHPPanicsOnBadK(t *testing.T) {
	g := gen.ErdosRenyi(10, 20, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	HP(g, 0)
}

func TestDGBeatsHPOnCut(t *testing.T) {
	// A mesh has strong locality; greedy streaming must cut far fewer
	// edges than hashing (the whole premise of Figure 9).
	g := gen.Mesh2D(40, 40)
	hp := HP(g, 4)
	dg := DG(g, 4, DefaultOptions())
	cutHP := partition.EdgeCut(g, hp)
	cutDG := partition.EdgeCut(g, dg)
	if cutDG >= cutHP {
		t.Fatalf("DG cut %d not below HP cut %d", cutDG, cutHP)
	}
}

func TestLDGBalanced(t *testing.T) {
	g := gen.RMAT(2000, 10000, 0.57, 0.19, 0.19, 5)
	g.UseDegreeWeights()
	p := LDG(g, 8, DefaultOptions())
	if err := p.Validate(g); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// LDG's defining property: it respects the capacity bound closely.
	// The final fallback can overflow slightly; allow a small margin.
	bound := partition.BalanceBound(g, 8, 0.02)
	for i, w := range p.Weights(g) {
		if float64(w) > float64(bound)*1.15 {
			t.Fatalf("partition %d weight %d far above bound %d", i, w, bound)
		}
	}
}

func TestDGRespectsCapacityOnUniform(t *testing.T) {
	g := gen.ErdosRenyi(1200, 4000, 9)
	p := DG(g, 6, DefaultOptions())
	bound := partition.BalanceBound(g, 6, 0.02)
	for i, w := range p.Weights(g) {
		if float64(w) > float64(bound)*1.15 {
			t.Fatalf("partition %d weight %d above bound %d", i, w, bound)
		}
	}
}

func TestGreedyAssignsEveryVertex(t *testing.T) {
	g := gen.BarabasiAlbert(500, 3, 4)
	for _, p := range []*partition.Partitioning{
		DG(g, 7, DefaultOptions()),
		LDG(g, 7, DefaultOptions()),
	} {
		for v, a := range p.Assign {
			if a < 0 || a >= 7 {
				t.Fatalf("vertex %d unassigned (%d)", v, a)
			}
		}
	}
}

func TestShuffleChangesResult(t *testing.T) {
	g := gen.Mesh2D(30, 30)
	nat := DG(g, 4, Options{Eps: 0.02})
	shuf := DG(g, 4, Options{Eps: 0.02, Shuffle: true, Seed: 99})
	diff := 0
	for v := range nat.Assign {
		if nat.Assign[v] != shuf.Assign[v] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("shuffled stream order should change the decomposition")
	}
}

func TestSingletonPartition(t *testing.T) {
	g := gen.ErdosRenyi(50, 100, 3)
	p := DG(g, 1, DefaultOptions())
	for _, a := range p.Assign {
		if a != 0 {
			t.Fatal("k=1 must place everything in partition 0")
		}
	}
}

func TestWeightedStreamRespectsVertexWeights(t *testing.T) {
	// One very heavy vertex: DG must not pack its whole neighborhood
	// into the same partition when the capacity bound forbids it.
	b := graph.NewBuilder(10)
	for v := int32(1); v < 10; v++ {
		b.AddEdge(0, v)
	}
	b.SetVertexWeight(0, 50)
	g := b.Build()
	p := DG(g, 2, Options{Eps: 0.0})
	w := p.Weights(g)
	// total weight 59, bound ceil(59/2)=30: partition with vertex 0
	// (w=50) exceeds any bound alone, but the remaining 9 unit vertices
	// must all land in the other partition.
	other := 1 - p.Assign[0]
	if w[other] != 9 {
		t.Fatalf("light vertices not diverted: weights %v, heavy in %d", w, p.Assign[0])
	}
}

// Property: streaming partitioners always produce valid decompositions
// with every vertex assigned, regardless of graph shape or k.
func TestQuickStreamValid(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int32(kRaw%15) + 1
		g := gen.RMAT(300, 1200, 0.5, 0.2, 0.2, seed)
		for _, p := range []*partition.Partitioning{
			HP(g, k),
			DG(g, k, DefaultOptions()),
			LDG(g, k, DefaultOptions()),
		} {
			if err := p.Validate(g); err != nil {
				t.Logf("invalid: %v", err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
