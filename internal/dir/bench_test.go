package dir

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"paragon/internal/migrate"
)

// The serving-layer benchmark of scripts/bench_dir.sh: lookup throughput
// under concurrent epoch flips. Environment:
//
//	PARAGON_DIR_WORKERS    reader goroutine count (default 1)
//	PARAGON_DIR_N          vertex-id space (default 1<<20)
//	PARAGON_DIR_FLIPS      epoch flips per op (default 256)
//	PARAGON_DIR_HASH_FILE  append "workers=<w> hash=<h>" after the run;
//	                       the script cross-checks the hash over all
//	                       worker counts — the flip schedule is fixed, so
//	                       the final assignment must be bit-identical
//	                       whatever the reader concurrency.

func dirEnvInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return def
}

// BenchmarkDirLookupFlip measures one contention window: a publisher
// applies a fixed schedule of rotation epochs while every reader
// performs a fixed number of lookups, each validated for epoch
// monotonicity. One op = flips publishes + workers×lookupsPerReader
// lookups, all overlapped.
func BenchmarkDirLookupFlip(b *testing.B) {
	const k = 64
	workers := dirEnvInt("PARAGON_DIR_WORKERS", 1)
	n := int32(dirEnvInt("PARAGON_DIR_N", 1<<20))
	flips := dirEnvInt("PARAGON_DIR_FLIPS", 256)
	const lookupsPerReader = 1 << 19

	assign := testAssign(int(n), k, 42)
	var finalHash uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d, err := New(assign, k, Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()

		var wg sync.WaitGroup
		errs := make([]error, workers)
		for r := 0; r < workers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				x := uint64(r)*0x9e3779b97f4a7c15 + 1
				lastEpoch := int64(-1)
				for j := 0; j < lookupsPerReader; j++ {
					x ^= x << 13
					x ^= x >> 7
					x ^= x << 17
					_, epoch := d.Lookup(int32(x % uint64(n)))
					if epoch < lastEpoch {
						errs[r] = fmt.Errorf("reader %d: epoch went backwards %d -> %d", r, lastEpoch, epoch)
						return
					}
					lastEpoch = epoch
				}
			}(r)
		}
		// The fixed flip schedule: independent of reader concurrency, so
		// the final assignment hash is identical at any worker count.
		for f := 0; f < flips; f++ {
			v := int32(f*977) % n
			from := d.Current().Rank(v)
			if _, err := d.Publish([]migrate.Move{{Vertex: v, From: from, To: (from + 1) % k}}); err != nil {
				b.Fatal(err)
			}
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		finalHash = d.Current().AssignHash()
		b.StartTimer()
	}
	b.StopTimer()
	totalLookups := float64(b.N) * float64(workers) * lookupsPerReader
	b.ReportMetric(totalLookups/b.Elapsed().Seconds(), "lookups/s")
	b.ReportMetric(float64(b.N*flips)/b.Elapsed().Seconds(), "flips/s")

	if path := os.Getenv("PARAGON_DIR_HASH_FILE"); path != "" {
		f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		fmt.Fprintf(f, "workers=%d hash=%#x\n", workers, finalHash)
	}
}
