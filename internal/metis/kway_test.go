package metis

import (
	"testing"

	"paragon/internal/gen"
	"paragon/internal/partition"
	"paragon/internal/stream"
)

func TestPartitionKWayBasic(t *testing.T) {
	g := gen.Mesh2D(32, 32)
	p := PartitionKWay(g, 8, Options{Seed: 1})
	if err := p.Validate(g); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for i, c := range p.Counts(g) {
		if c == 0 {
			t.Fatalf("partition %d empty", i)
		}
	}
	if s := partition.Skewness(g, p); s > 1.4 {
		t.Fatalf("skewness %.3f", s)
	}
}

func TestPartitionKWayQualityNearRB(t *testing.T) {
	g := gen.Mesh2D(40, 40)
	g.UseDegreeWeights()
	rb := Partition(g, 16, Options{Seed: 2})
	kw := PartitionKWay(g, 16, Options{Seed: 2})
	cutRB := partition.EdgeCut(g, rb)
	cutKW := partition.EdgeCut(g, kw)
	// Direct k-way is allowed to trade some quality; it must stay in the
	// same ballpark (≤ 1.8× RB) and far below hashing.
	if cutKW > cutRB*18/10 {
		t.Fatalf("k-way cut %d too far above RB cut %d", cutKW, cutRB)
	}
	hp := stream.HP(g, 16)
	if cutKW >= partition.EdgeCut(g, hp) {
		t.Fatalf("k-way cut %d not below hashing %d", cutKW, partition.EdgeCut(g, hp))
	}
}

func TestPartitionKWayEdgeCases(t *testing.T) {
	g := gen.ErdosRenyi(60, 150, 3)
	p1 := PartitionKWay(g, 1, Options{})
	for _, a := range p1.Assign {
		if a != 0 {
			t.Fatal("k=1 must be all zero")
		}
	}
	// Tiny graph, no coarsening possible.
	small := gen.ErdosRenyi(30, 60, 4)
	p := PartitionKWay(small, 4, Options{Seed: 5})
	if err := p.Validate(small); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k < 1")
		}
	}()
	PartitionKWay(g, 0, Options{})
}

func TestKWayRefineImprovesCut(t *testing.T) {
	g := gen.Mesh2D(24, 24)
	p := stream.HP(g, 4)
	before := partition.EdgeCut(g, p)
	bound := partition.BalanceBound(g, 4, 0.1)
	kwayRefine(g, p, bound, 6)
	after := partition.EdgeCut(g, p)
	if after >= before {
		t.Fatalf("k-way refine did not improve: %d -> %d", before, after)
	}
	for i, w := range p.Weights(g) {
		if w > bound {
			t.Fatalf("partition %d weight %d above bound %d", i, w, bound)
		}
	}
}

func TestMethodString(t *testing.T) {
	if RecursiveBisection.String() == "" || KWay.String() == "" || Method(9).String() == "" {
		t.Fatal("Method strings")
	}
}

func TestKWayFasterAtLargeK(t *testing.T) {
	// The point of direct k-way: one coarsening instead of k-1. We don't
	// time (flaky); instead verify both run and produce valid results at
	// k=64 on a mid-size graph.
	g := gen.RMAT(8000, 40000, 0.57, 0.19, 0.19, 6)
	g.UseDegreeWeights()
	kw := PartitionKWay(g, 64, Options{Seed: 7})
	if err := kw.Validate(g); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	nonEmpty := 0
	for _, c := range kw.Counts(g) {
		if c > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 60 {
		t.Fatalf("only %d of 64 partitions populated", nonEmpty)
	}
}
