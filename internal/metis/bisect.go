package metis

import (
	"math/rand"

	"paragon/internal/graph"
)

// bisection state: side[v] ∈ {0,1}.

// initialBisection produces a 2-way split of g whose side-0 weight is as
// close as possible to target0 (a fraction of total weight), trying
// several greedy graph-growing runs and keeping the lowest cut.
func initialBisection(g *graph.Graph, target0 float64, rng *rand.Rand, tries int) []int8 {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	var best []int8
	bestCut := int64(-1)
	for t := 0; t < tries; t++ {
		side := growBisection(g, target0, rng)
		cut := cutWeight(g, side)
		if bestCut < 0 || cut < bestCut {
			best, bestCut = side, cut
		}
	}
	return best
}

// growBisection grows side 0 by BFS from a random seed until it holds
// target0 of the total vertex weight; everything else is side 1.
func growBisection(g *graph.Graph, target0 float64, rng *rand.Rand) []int8 {
	n := g.NumVertices()
	side := make([]int8, n)
	for i := range side {
		side[i] = 1
	}
	want := int64(target0 * float64(g.TotalVertexWeight()))
	var got int64
	visited := make([]bool, n)
	queue := make([]int32, 0, 256)
	for got < want {
		// Pick an unvisited seed (handles disconnected graphs).
		seed := int32(-1)
		for tries := 0; tries < 16; tries++ {
			c := int32(rng.Intn(int(n)))
			if !visited[c] {
				seed = c
				break
			}
		}
		if seed < 0 {
			for v := int32(0); v < n; v++ {
				if !visited[v] {
					seed = v
					break
				}
			}
		}
		if seed < 0 {
			break // everything visited
		}
		visited[seed] = true
		queue = append(queue[:0], seed)
		for len(queue) > 0 && got < want {
			v := queue[0]
			queue = queue[1:]
			side[v] = 0
			got += int64(g.VertexWeight(v))
			for _, u := range g.Neighbors(v) {
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	return side
}

// cutWeight returns the total weight of edges crossing the bisection.
func cutWeight(g *graph.Graph, side []int8) int64 {
	var cut int64
	for v := int32(0); v < g.NumVertices(); v++ {
		adj := g.Neighbors(v)
		w := g.EdgeWeights(v)
		for i, u := range adj {
			if v < u && side[v] != side[u] {
				cut += int64(w[i])
			}
		}
	}
	return cut
}

// sideWeights returns the vertex-weight mass of each side.
func sideWeights(g *graph.Graph, side []int8) [2]int64 {
	var w [2]int64
	for v := int32(0); v < g.NumVertices(); v++ {
		w[side[v]] += int64(g.VertexWeight(v))
	}
	return w
}

// fmRefine runs Fiduccia–Mattheyses passes on the bisection: repeatedly
// move the highest-gain movable vertex (cut reduction), allow a bounded
// number of negative-gain moves to escape local minima, and roll back to
// the best prefix. maxW bounds each side's weight; passes bounds the
// number of full FM passes.
func fmRefine(g *graph.Graph, side []int8, maxW [2]int64, passes int) {
	n := g.NumVertices()
	if n < 2 {
		return
	}
	const badMoveLimit = 64
	gain := make([]int64, n)
	locked := make([]bool, n)
	w := sideWeights(g, side)

	for pass := 0; pass < passes; pass++ {
		// Compute gains for boundary-ish vertices and build the heap.
		h := newGainHeap(int(n))
		for v := int32(0); v < n; v++ {
			locked[v] = false
			gain[v] = moveGain(g, side, v)
			if hasForeignNeighbor(g, side, v) {
				h.push(v, gain[v])
			}
		}
		type undo struct {
			v int32
		}
		var history []undo
		var prefixGain, bestGain int64
		bestLen := 0
		bad := 0
		for h.len() > 0 && bad < badMoveLimit {
			v, gv, ok := h.popValid(gain, locked)
			if !ok {
				break
			}
			from := side[v]
			to := 1 - from
			if w[to]+int64(g.VertexWeight(v)) > maxW[to] {
				locked[v] = true // inadmissible this pass
				continue
			}
			// Apply the move.
			side[v] = to
			locked[v] = true
			w[from] -= int64(g.VertexWeight(v))
			w[to] += int64(g.VertexWeight(v))
			history = append(history, undo{v})
			prefixGain += gv
			if prefixGain > bestGain {
				bestGain = prefixGain
				bestLen = len(history)
				bad = 0
			} else {
				bad++
			}
			// Update neighbor gains.
			adj := g.Neighbors(v)
			ew := g.EdgeWeights(v)
			for i, u := range adj {
				if locked[u] {
					continue
				}
				// Edge weight counted twice: once for u's external/internal
				// flip relative to v's old side, once for the new side.
				if side[u] == from {
					gain[u] += 2 * int64(ew[i])
				} else {
					gain[u] -= 2 * int64(ew[i])
				}
				h.push(u, gain[u])
			}
		}
		// Roll back moves beyond the best prefix.
		for i := len(history) - 1; i >= bestLen; i-- {
			v := history[i].v
			to := side[v]
			from := 1 - to
			side[v] = from
			w[to] -= int64(g.VertexWeight(v))
			w[from] += int64(g.VertexWeight(v))
		}
		if bestGain <= 0 {
			break // pass made no progress
		}
	}
}

// moveGain returns the cut reduction from flipping v to the other side:
// external degree − internal degree.
func moveGain(g *graph.Graph, side []int8, v int32) int64 {
	var ext, internal int64
	adj := g.Neighbors(v)
	w := g.EdgeWeights(v)
	for i, u := range adj {
		if side[u] == side[v] {
			internal += int64(w[i])
		} else {
			ext += int64(w[i])
		}
	}
	return ext - internal
}

func hasForeignNeighbor(g *graph.Graph, side []int8, v int32) bool {
	for _, u := range g.Neighbors(v) {
		if side[u] != side[v] {
			return true
		}
	}
	return false
}

// gainHeap is a lazy max-heap of (vertex, gain) entries. Stale entries
// (whose recorded gain no longer matches the current gain, or whose
// vertex is locked) are discarded at pop time.
type gainHeap struct {
	v []int32
	g []int64
}

func newGainHeap(capHint int) *gainHeap {
	return &gainHeap{v: make([]int32, 0, capHint), g: make([]int64, 0, capHint)}
}

func (h *gainHeap) len() int { return len(h.v) }

func (h *gainHeap) push(v int32, gain int64) {
	h.v = append(h.v, v)
	h.g = append(h.g, gain)
	i := len(h.v) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.g[p] >= h.g[i] {
			break
		}
		h.swap(p, i)
		i = p
	}
}

func (h *gainHeap) pop() (int32, int64) {
	v, g := h.v[0], h.g[0]
	last := len(h.v) - 1
	h.v[0], h.g[0] = h.v[last], h.g[last]
	h.v, h.g = h.v[:last], h.g[:last]
	i := 0
	for {
		l, r, s := 2*i+1, 2*i+2, i
		if l < last && h.g[l] > h.g[s] {
			s = l
		}
		if r < last && h.g[r] > h.g[s] {
			s = r
		}
		if s == i {
			break
		}
		h.swap(i, s)
		i = s
	}
	return v, g
}

// popValid pops until it finds an entry that is fresh (gain matches) and
// unlocked.
func (h *gainHeap) popValid(gain []int64, locked []bool) (int32, int64, bool) {
	for h.len() > 0 {
		v, g := h.pop()
		if locked[v] || gain[v] != g {
			continue
		}
		return v, g, true
	}
	return 0, 0, false
}

func (h *gainHeap) swap(i, j int) {
	h.v[i], h.v[j] = h.v[j], h.v[i]
	h.g[i], h.g[j] = h.g[j], h.g[i]
}
