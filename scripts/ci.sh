#!/usr/bin/env bash
# Tier-1 gate: vet, the determinism linter, build, full test suite, then
# the race detector over the whole tree (DESIGN.md §8 requires
# `go test -race` to stay clean on everything that shares state across
# goroutines, and the determinism contract of DESIGN.md is enforced
# mechanically by paragonlint — any diagnostic fails the gate). Tests
# run with -shuffle=on so inter-test ordering dependencies can't hide;
# the race pass covers the fault-matrix sweep, exercising degraded-mode
# recovery under the detector.
set -euo pipefail
cd "$(dirname "$0")/.."

go vet ./...

# Determinism linter: built into a temp dir (never the repo root), run
# with the SARIF artifact for CI consumers. The gate fails on any
# non-suppressed diagnostic, stale suppressions included — staleignore
# reports every //lint:ignore that no longer matches a live finding.
lintdir="$(mktemp -d)"
trap 'rm -rf "$lintdir"' EXIT
go build -o "$lintdir/paragonlint" ./cmd/paragonlint
"$lintdir/paragonlint" -sarif paragonlint.sarif -json paragonlint.json ./...

go build ./...
go test -shuffle=on ./...
go test -race -shuffle=on ./...

# Scheduler worker extremes: the paragon package under the race detector
# at GOMAXPROCS 1 and 4, so the pair-level waves run both fully serialized
# and genuinely interleaved (TestSchedulerDeterminism's contract holds at
# every worker count; -cpu also changes the Config.Workers default).
go test -race -cpu=1,4 ./internal/paragon/

# Observability layer under the race detector: the tracer's staged-commit
# path and the registry's atomic accumulators share state across the
# worker pool by design (DESIGN.md §13).
go test -race ./internal/obs/

# Serving layer under the race detector at GOMAXPROCS 1 and 4: the
# partition directory's lock-free lookups race epoch flips by design
# (DESIGN.md §16); the stress test asserts no torn (vertex, rank, epoch)
# triple at either extreme.
go test -race -cpu=1,4 ./internal/dir/

# Portfolio ensembles under the race detector at GOMAXPROCS 1 and 4:
# members race on the shared frozen graph with member-id-owned result
# slots (DESIGN.md §17); -cpu also changes the Config.Workers default,
# so the determinism tests cover serialized and interleaved members.
go test -race -cpu=1,4 ./internal/portfolio/

# The directory and the portfolio must sit inside paragonlint's computed
# kernel set (the facade re-exports pull them in) — if either drops out,
# the wallclock/sharedwrite/reduceorder checkers silently stop covering it.
"$lintdir/paragonlint" -kernel | grep -q '^paragon/internal/dir$'
"$lintdir/paragonlint" -kernel | grep -q '^paragon/internal/portfolio$'

# Obs determinism end to end: the same seeded faulty run at -workers 1
# and 8 must serialize byte-identical trace and metrics files — the
# observability half of the determinism contract, checked through the
# real CLI, not just the unit test.
obsdir="$(mktemp -d)"
trap 'rm -rf "$lintdir" "$obsdir"' EXIT
go build -o "$obsdir/paragon" ./cmd/paragon
go run ./cmd/gengraph -rmat -n 5000 -m 30000 -seed 13 -o "$obsdir/g.metis" > /dev/null
for w in 1 8; do
    "$obsdir/paragon" -in "$obsdir/g.metis" -k 24 -workers "$w" -seed 9 \
        -fault-rate 0.05 -fault-seed 3 \
        -trace "$obsdir/t$w.jsonl" -metrics "$obsdir/m$w.prom" > /dev/null
done
cmp "$obsdir/t1.jsonl" "$obsdir/t8.jsonl"
cmp "$obsdir/m1.prom" "$obsdir/m8.prom"

# Bench bitrot smoke: compile and run every benchmark once so benchmark
# code can't silently rot between perf-measurement sessions.
go test -bench=. -benchtime=1x -run='^$' ./... > /dev/null

# Scale-harness smoke: the full bench_scale.sh pipeline (sharded
# generation, binary write/reload, env-driven bench processes, hash
# cross-check, JSON assembly) at n=100k with one iteration and the 10M
# point disabled — seconds, not minutes, but any wiring rot fails here
# instead of during a real measurement session.
SCALE_NS="100000" SCALE_WORKERS="1 2" SCALE_TENM=0 \
    scripts/bench_scale.sh "$obsdir/scale_smoke.json" > /dev/null
grep -q '"refine/n=100000/workers=2"' "$obsdir/scale_smoke.json"

# Serving-layer harness smoke: bench_dir.sh end to end (env-driven bench
# processes, reader-count hash cross-check, JSON assembly) at a small
# directory — wiring rot fails here, not in a measurement session.
DIR_WORKERS="1 2" DIR_N=65536 DIR_FLIPS=64 \
    scripts/bench_dir.sh "$obsdir/dir_smoke.json" > /dev/null
grep -q '"lookupflip/workers=2"' "$obsdir/dir_smoke.json"

# Portfolio harness smoke: bench_portfolio.sh end to end (env-driven
# bench processes, cross-worker selected-hash identity, JSON assembly)
# at a small grid — the bit-identity enforcement itself runs here too.
PORT_P="2" PORT_WORKERS="1 2" PORT_N=10000 PORT_K=32 \
    scripts/bench_portfolio.sh "$obsdir/port_smoke.json" > /dev/null
grep -q '"portfolio/p=2/workers=2"' "$obsdir/port_smoke.json"

echo "ci: all green"
