package gen

import (
	"fmt"
	"slices"
	"sync"

	"paragon/internal/graph"
)

// rmatShards is the fixed logical shard count of RMATSharded. The edge
// stream is cut into this many chunks regardless of how many workers run
// them, so the output depends only on (n, m, a, b, c, seed) — never on
// the parallelism. 64 matches the scheduler's sweepShards convention and
// divides any realistic worker count.
const rmatShards = 64

// RMATSharded generates the same structural class as RMAT — a
// recursive-matrix (Kronecker) graph with n vertices and approximately m
// undirected edges — but in parallel across `workers` goroutines, each
// drawing from its own deterministic splitmix64 stream. It exists for
// the 10M-vertex scale path, where the serial generator's single
// math/rand stream and single m-entry dedup map dominate wall time and
// transient memory.
//
// Design, and why the output is worker-count invariant:
//
//   - The m-edge budget is split over 64 fixed logical shards. Shard s
//     draws from splitmix64 stream derived from (seed, s), generates
//     candidate edges until it has its quota of locally-unique keys (or
//     exhausts 4x quota attempts, mirroring the serial generator's
//     attempt cap), and records them in a shard-owned slice. No shared
//     state is touched, so any number of workers produces the same 64
//     slices.
//   - Shard slices are merged in shard order, then globally deduped by
//     sorting the canonical edge keys — cross-shard duplicates are rare
//     (birthday-bounded by m^2 over the n^2/2 key space) and dropping
//     them undershoots m slightly, exactly like the serial generator's
//     duplicate collisions.
//   - Vertex ids are scattered by a seeded bijective bit-mix over the
//     padded 2^levels id space instead of rng.Perm: same purpose
//     (locality must not leak the recursion), O(1) memory instead of an
//     O(2^levels) permutation array.
//   - Isolated vertices are attached by ensureNoIsolatesHashed, which
//     derives each attachment from (seed, v) alone — no stream whose
//     position depends on how many isolates precede v, so the fix-up is
//     also order- and worker-independent.
//
// Transient memory is capped by the per-shard dedup: each in-flight
// shard holds a map of at most m/64 entries, so at w workers the peak
// map footprint is w/64 of the serial generator's, and the merge works
// on flat []int64 keys (8 bytes/edge) rather than map entries.
//
// RMATSharded is NOT stream-compatible with RMAT: the same seed gives a
// different (equally valid) graph. Goldens that pin serial RMAT output
// are unaffected; TestRMATShardedGolden pins this generator's own
// stream.
func RMATSharded(n int32, m int64, a, b, c float64, seed int64, workers int) *graph.Graph {
	if n < 2 {
		panic("gen: RMATSharded needs n >= 2")
	}
	if a <= 0 || b < 0 || c < 0 || a+b+c >= 1 {
		panic(fmt.Sprintf("gen: RMATSharded bad probabilities a=%v b=%v c=%v", a, b, c))
	}
	if workers < 1 {
		workers = 1
	}
	levels := 0
	for (int64(1) << levels) < int64(n) {
		levels++
	}
	salt := splitmixFin(uint64(seed) * 0x94d049bb133111eb)

	// Phase 1: shards generate locally-deduped candidate keys in parallel.
	shardKeys := make([][]int64, rmatShards)
	work := make(chan int, rmatShards)
	for s := 0; s < rmatShards; s++ {
		work <- s
	}
	close(work)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range work {
				shardKeys[s] = rmatShard(n, m, a, b, c, seed, salt, levels, s)
			}
		}()
	}
	wg.Wait()

	// Phase 2: merge in shard order, dedup globally by sorting keys.
	var total int
	for _, ks := range shardKeys {
		total += len(ks)
	}
	keys := make([]int64, 0, total)
	for _, ks := range shardKeys {
		keys = append(keys, ks...)
	}
	slices.Sort(keys)
	keys = slices.Compact(keys)

	bld := graph.NewBuilder(n)
	bld.Reserve(int64(len(keys)))
	for _, key := range keys {
		bld.AddEdge(int32(key/int64(n)), int32(key%int64(n)))
	}
	ensureNoIsolatesHashed(bld, seed)
	return bld.Build()
}

// rmatShard generates shard s's quota of locally-unique canonical edge
// keys from its own splitmix64 stream.
func rmatShard(n int32, m int64, a, b, c float64, seed int64, salt uint64, levels, s int) []int64 {
	quota := m / rmatShards
	if int64(s) < m%rmatShards {
		quota++
	}
	if quota == 0 {
		return nil
	}
	rng := splitmix{state: splitmixFin(splitmixFin(uint64(seed)) + uint64(s)*0x9e3779b97f4a7c15)}
	ab, abc := a+b, a+b+c
	seen := make(map[int64]struct{}, quota)
	keys := make([]int64, 0, quota)
	attempts := quota * 4
	for i := int64(0); i < attempts && int64(len(keys)) < quota; i++ {
		var u, v uint64
		for l := 0; l < levels; l++ {
			r := rng.float64()
			u <<= 1
			v <<= 1
			switch {
			case r < a:
				// top-left: no bits set
			case r < ab:
				v |= 1
			case r < abc:
				u |= 1
			default:
				u |= 1
				v |= 1
			}
		}
		pu := int64(scrambleID(u, salt, levels)) % int64(n)
		pv := int64(scrambleID(v, salt, levels)) % int64(n)
		if pu == pv {
			continue
		}
		if pu > pv {
			pu, pv = pv, pu
		}
		key := pu*int64(n) + pv
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		keys = append(keys, key)
	}
	return keys
}

// scrambleID permutes the padded 2^levels id space with a seeded
// bijection (odd-constant multiplies and xor-shifts are each invertible
// modulo a power of two), standing in for the serial generator's
// rng.Perm without its O(2^levels) memory.
func scrambleID(x, salt uint64, levels int) uint64 {
	mask := uint64(1)<<levels - 1
	sh := uint(levels/2 + 1)
	x = (x ^ salt) & mask
	x = (x * 0x9e3779b97f4a7c15) & mask
	x ^= x >> sh
	x = (x * 0xbf58476d1ce4e5b9) & mask
	x ^= x >> sh
	return x & mask
}

// splitmix is the splitmix64 sequential generator: a Weyl counter pushed
// through a finalizer. Streams with distinct initial states are
// independent for our purposes and cost no allocation.
type splitmix struct{ state uint64 }

func (r *splitmix) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return splitmixFin(r.state)
}

// float64 returns a uniform float in [0,1) from the top 53 bits.
func (r *splitmix) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// splitmixFin is the splitmix64 output finalizer.
func splitmixFin(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ensureNoIsolatesHashed attaches every isolated vertex v to a partner
// derived from (seed, v) alone. Unlike ensureNoIsolates, which advances
// a shared sequential stream per isolate (so each attachment depends on
// every earlier one), the hashed form is independent per vertex — the
// property the sharded generator needs to stay worker-count invariant.
func ensureNoIsolatesHashed(bld *graph.Builder, seed int64) {
	n := bld.NumVertices()
	if n < 2 {
		return
	}
	for _, v := range bld.AppendIsolated(nil) {
		u := int32(splitmixFin(uint64(seed)^(uint64(v)*0xbf58476d1ce4e5b9)) % uint64(n))
		if u == v {
			u = (u + 1) % n
		}
		bld.AddEdge(v, u)
	}
}
