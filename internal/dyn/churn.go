package dyn

import (
	"fmt"
	"math/rand"

	"paragon/internal/graph"
	"paragon/internal/partition"
)

// Edge-level dynamism: the paper's Pregel background allows vertex
// functions to add or remove edges; between computations the
// decomposition then degrades and a refinement should be triggered.
// This file provides a churn generator, an applier over graph.Overlay,
// and the trigger policy deciding when re-refinement pays off.

// EdgeOp is one churn event.
type EdgeOp struct {
	Add     bool // false = remove
	U, V, W int32
}

// Source is the adjacency view churn generation draws endpoints from.
// A static *graph.Graph satisfies it through GraphSource; the streaming
// session feeds its live dynamic adjacency bounded to the currently
// active vertex prefix, so the workload generator keeps targeting
// vertices that actually exist as the graph grows.
type Source interface {
	NumVertices() int32
	Degree(v int32) int32
	// Neighbor returns the i-th neighbor of v, 0 <= i < Degree(v).
	Neighbor(v, i int32) int32
}

// GraphSource adapts a static *graph.Graph to Source.
type GraphSource struct{ G *graph.Graph }

func (s GraphSource) NumVertices() int32        { return s.G.NumVertices() }
func (s GraphSource) Degree(v int32) int32      { return s.G.Degree(v) }
func (s GraphSource) Neighbor(v, i int32) int32 { return s.G.Neighbors(v)[i] }

// resampleTries bounds every rejection-sampling loop in the generator.
// With n >= 2 a uniform redraw almost never needs more than a couple of
// tries; the bound only matters for degenerate inputs (a graph with
// fewer distinct edges than requested removals), where the generator
// returns fewer ops instead of spinning.
const resampleTries = 32

// RandomChurn generates adds+removes edge events against g: removals
// pick distinct existing edges uniformly; additions pick endpoint pairs
// with a mild preference for closing triangles (friend-of-friend), the
// dominant growth pattern of the paper's social datasets.
func RandomChurn(g *graph.Graph, adds, removes int, seed int64) []EdgeOp {
	return ChurnOps(GraphSource{g}, adds, removes, rand.New(rand.NewSource(seed)))
}

// ChurnOps is the rng-threading form of RandomChurn over any adjacency
// view — the form the streaming workload generator drives batch by
// batch with one long-lived rng.
//
// Removals are deduplicated: each picked edge is recorded under its
// canonical (min,max) key and duplicate picks are resampled, so the
// number of remove ops equals the number of removals ApplyChurn will
// perform (instead of duplicates collapsing into silent no-ops). When
// the view runs out of distinct pickable edges the op list comes up
// short — callers that care compare len(ops) against their request.
func ChurnOps(src Source, adds, removes int, rng *rand.Rand) []EdgeOp {
	n := src.NumVertices()
	if n < 2 {
		return nil
	}
	var ops []EdgeOp
	picked := make(map[[2]int32]struct{}, removes)
	for i := 0; i < removes; i++ {
		// Uniform-ish existing edge: random vertex with degree > 0, then
		// random incident edge, resampled while it hits an edge already
		// picked this call.
		for tries := 0; tries < resampleTries; tries++ {
			v := int32(rng.Intn(int(n)))
			d := src.Degree(v)
			if d == 0 {
				continue
			}
			u := src.Neighbor(v, int32(rng.Intn(int(d))))
			key := [2]int32{v, u}
			if u < v {
				key = [2]int32{u, v}
			}
			if _, dup := picked[key]; dup {
				continue
			}
			picked[key] = struct{}{}
			ops = append(ops, EdgeOp{Add: false, U: v, V: u})
			break
		}
	}
	for i := 0; i < adds; i++ {
		u := int32(rng.Intn(int(n)))
		v := int32(-1) // -1 = no endpoint drawn yet
		if d := src.Degree(u); d > 0 && rng.Intn(2) == 0 {
			// Friend-of-friend: a neighbor of a neighbor.
			w1 := src.Neighbor(u, int32(rng.Intn(int(d))))
			if d2 := src.Degree(w1); d2 > 0 {
				if cand := src.Neighbor(w1, int32(rng.Intn(int(d2)))); cand != u {
					v = cand
				}
			}
		}
		// A failed friend-of-friend draw falls back to a uniform endpoint.
		// (The old loop condition `v == u || v == 0 && rng.Intn(2) == 0`
		// parsed as `v == u || (v == 0 && ...)`, keeping the zero-value
		// sentinel half the time and biasing ~a quarter of all added
		// edges onto vertex 0.)
		for tries := 0; v < 0 || v == u; tries++ {
			if tries == resampleTries {
				v = -1
				break
			}
			v = int32(rng.Intn(int(n)))
		}
		if v < 0 {
			continue
		}
		ops = append(ops, EdgeOp{Add: true, U: u, V: v, W: 1})
	}
	return ops
}

// ApplyChurn applies events to an overlay, returning how many actually
// changed the graph (removals of absent edges and invalid adds are
// skipped).
func ApplyChurn(o *graph.Overlay, ops []EdgeOp) int {
	applied := 0
	for _, op := range ops {
		if op.Add {
			if o.HasEdge(op.U, op.V) {
				continue
			}
			if err := o.AddEdge(op.U, op.V, op.W); err == nil {
				applied++
			}
		} else if o.HasEdge(op.U, op.V) {
			o.RemoveEdge(op.U, op.V)
			applied++
		}
	}
	return applied
}

// TriggerPolicy decides when accumulated dynamism justifies running the
// refiner again — the "injection also triggered the execution of
// PARAGON" loop of Figure 14, made explicit.
type TriggerPolicy struct {
	// MaxSkew triggers when Eq. 4 skewness exceeds it (default 1.1).
	MaxSkew float64
	// MaxChurn triggers when changed edges exceed this fraction of the
	// graph's edges (default 0.05).
	MaxChurn float64
	// MaxStaleness triggers when the live Eq. 2 communication cost has
	// grown past (1+MaxStaleness)× the reference recorded at the last
	// committed refinement (0 disables; only EvaluateScore consults it).
	MaxStaleness float64
}

// DefaultTrigger returns the defaults above.
func DefaultTrigger() TriggerPolicy {
	return TriggerPolicy{MaxSkew: 1.1, MaxChurn: 0.05, MaxStaleness: 0.25}
}

// Decision explains a trigger evaluation.
type Decision struct {
	Refine    bool
	Reason    string
	Code      int // firing rule: 0 skew, 1 churn, 2 staleness, -1 none
	Skew      float64
	Churn     float64
	Staleness float64 // live comm cost / reference comm cost (EvaluateScore only)
}

// Evaluate inspects the current graph state and decomposition plus the
// churned-edge count since the last refinement.
func (tp TriggerPolicy) Evaluate(g *graph.Graph, p *partition.Partitioning, churnedEdges int64) Decision {
	sc := partition.Score{Skewness: partition.Skewness(g, p)}
	return tp.EvaluateScore(sc, 0, g.NumEdges(), churnedEdges)
}

// EvaluateScore is the incremental form the streaming daemon drives: the
// caller maintains the Eq. 2–4 Score of the live decomposition itself
// (delta-updated per churn event, no graph rescan) and feeds it here
// together with the comm-cost reference of the last committed epoch.
// refCost <= 0 disables the staleness check, as does MaxStaleness == 0.
func (tp TriggerPolicy) EvaluateScore(sc partition.Score, refCost float64, edges, churnedEdges int64) Decision {
	if tp.MaxSkew == 0 {
		tp.MaxSkew = 1.1
	}
	if tp.MaxChurn == 0 {
		tp.MaxChurn = 0.05
	}
	d := Decision{Code: -1, Skew: sc.Skewness}
	if edges > 0 {
		d.Churn = float64(churnedEdges) / float64(edges)
	}
	if refCost > 0 {
		d.Staleness = sc.CommCost / refCost
	}
	switch {
	case d.Skew > tp.MaxSkew:
		d.Refine = true
		d.Code = 0
		d.Reason = fmt.Sprintf("skewness %.3f exceeds %.3f", d.Skew, tp.MaxSkew)
	case d.Churn > tp.MaxChurn:
		d.Refine = true
		d.Code = 1
		d.Reason = fmt.Sprintf("churn %.1f%% exceeds %.1f%%", 100*d.Churn, 100*tp.MaxChurn)
	case tp.MaxStaleness > 0 && refCost > 0 && d.Staleness > 1+tp.MaxStaleness:
		d.Refine = true
		d.Code = 2
		d.Reason = fmt.Sprintf("comm cost grew %.1f%% past the last epoch's %.3f", 100*(d.Staleness-1), refCost)
	default:
		d.Reason = "decomposition still healthy"
	}
	return d
}
