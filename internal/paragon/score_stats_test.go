package paragon

import (
	"math"
	"testing"

	"paragon/internal/gen"
	"paragon/internal/partition"
	"paragon/internal/stream"
	"paragon/internal/topology"
)

// TestScoreMatchesRefineStats regression-tests the shared scorer against
// the values Refine reports: the Eq. 3 migration cost of the refined
// decomposition must agree with Stats.MigrationCost. Refine's migration
// sweep reduces in fixed shard order (DESIGN.md §12) while ComputeScore
// folds flat in vertex order — both are deterministic, but they
// associate float additions differently, so the comparison allows
// relative rounding slack (not behavioral slack: 1e-9, far below any
// real divergence).
func TestScoreMatchesRefineStats(t *testing.T) {
	g := gen.RMAT(4000, 24000, 0.57, 0.19, 0.19, 3)
	g.UseDegreeWeights()
	cl := topology.PittCluster(2)
	const k = 24
	c, err := cl.PartitionCostMatrix(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := stream.DG(g, k, stream.DefaultOptions())
	orig := p.Clone()
	cfg := Config{DRP: 4, Shuffles: 2, Seed: 21}
	st, err := Refine(g, p, c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Moves == 0 {
		t.Fatal("fixture too weak: no moves, migration cost trivially zero")
	}
	s := partition.ComputeScore(g, p, orig.Assign, c, cfg.WithDefaults(k).Alpha)
	if s.MigrationCost == 0 {
		t.Fatal("scorer saw no migration despite kept moves")
	}
	if rel := math.Abs(s.MigrationCost-st.MigrationCost) / st.MigrationCost; rel > 1e-9 {
		t.Fatalf("scorer MigrationCost %v vs Stats.MigrationCost %v (rel %g)", s.MigrationCost, st.MigrationCost, rel)
	}
	// The quality triple must be exactly what Evaluate reports — both
	// route through the same one-pass scorer.
	q := partition.Evaluate(g, p, c, cfg.WithDefaults(k).Alpha)
	if q.EdgeCut != s.EdgeCut || q.CommCost != s.CommCost || q.Skewness != s.Skewness {
		t.Fatalf("Evaluate %+v diverges from ComputeScore %+v", q, s)
	}
}
