package paragon_test

import (
	"bytes"
	"testing"

	paragonlib "paragon"
)

// The facade tests exercise the public API end to end, exactly as a
// downstream user would (no internal imports).

func TestPublicAPIPipeline(t *testing.T) {
	g := paragonlib.RMAT(2000, 10000, 0.57, 0.19, 0.19, 1)
	g.UseDegreeWeights()
	cluster := paragonlib.PittCluster(2)
	k := cluster.TotalCores()
	costs, err := cluster.PartitionCostMatrix(k, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	nodeOf, err := cluster.NodeOf(k)
	if err != nil {
		t.Fatal(err)
	}
	p := paragonlib.DG(g, int32(k))
	before := paragonlib.Evaluate(g, p, costs, 10)

	cfg := paragonlib.DefaultConfig()
	cfg.Seed = 7
	cfg.NodeOf = nodeOf
	stats, err := paragonlib.Refine(g, p, costs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	after := paragonlib.Evaluate(g, p, costs, 10)
	if after.CommCost >= before.CommCost {
		t.Fatalf("refinement did not improve: %v -> %v", before.CommCost, after.CommCost)
	}
	if stats.Moves == 0 {
		t.Fatal("no moves recorded")
	}

	// Plan the migration and verify its cost matches the metric.
	old := paragonlib.DG(g, int32(k))
	plan, err := paragonlib.NewMigrationPlan(old, p)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := plan.Cost(g, costs), paragonlib.MigrationCost(g, old, p, costs); got != want {
		t.Fatalf("plan cost %v != metric %v", got, want)
	}

	// Run BFS on the refined placement.
	engine, err := paragonlib.NewEngine(g, p, cluster, paragonlib.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dist, res, err := paragonlib.BFS(engine, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.JET <= 0 || len(dist) != int(g.NumVertices()) {
		t.Fatalf("BFS run implausible: %+v", res)
	}
}

func TestPublicAPIFormats(t *testing.T) {
	g := paragonlib.Mesh2D(8, 8)
	var metisBuf, binBuf bytes.Buffer
	if err := paragonlib.WriteMETIS(&metisBuf, g); err != nil {
		t.Fatal(err)
	}
	if err := paragonlib.WriteBinary(&binBuf, g); err != nil {
		t.Fatal(err)
	}
	g1, err := paragonlib.ReadMETIS(&metisBuf)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := paragonlib.ReadBinary(&binBuf)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumEdges() != g.NumEdges() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("round trips lost edges")
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	g := paragonlib.RoadGrid(20, 20, 0.72, 0.05, 3)
	hp := paragonlib.HP(g, 4)
	mp := paragonlib.Metis(g, 4, 1)
	uni := paragonlib.UniformMatrix(4)
	if paragonlib.CommCost(g, mp, uni, 1) >= paragonlib.CommCost(g, hp, uni, 1) {
		t.Fatal("metis not below hashing")
	}
	rp, err := paragonlib.Repartition(g, hp, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := rp.Validate(g); err != nil {
		t.Fatal(err)
	}
	ldg := paragonlib.LDG(g, 4)
	if s := paragonlib.Skewness(g, ldg); s > 1.5 {
		t.Fatalf("LDG skew %v", s)
	}
	p2 := hp.Clone()
	if err := paragonlib.RefineSerial(g, p2, uni, 10, 0.05); err != nil {
		t.Fatal(err)
	}
	if _, err := paragonlib.RefineUniform(g, hp.Clone(), paragonlib.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIDatasetsAndOverlay(t *testing.T) {
	if len(paragonlib.Datasets()) != 12 {
		t.Fatal("dataset registry size")
	}
	g := paragonlib.Mesh2D(6, 6)
	o := paragonlib.NewOverlay(g)
	if err := o.AddEdge(0, 35, 2); err != nil {
		t.Fatal(err)
	}
	m := o.Materialize()
	if !m.HasEdge(0, 35) {
		t.Fatal("overlay edge lost")
	}
	b := paragonlib.NewBuilder(3)
	b.AddEdge(0, 1)
	if b.Build().NumEdges() != 1 {
		t.Fatal("builder via facade")
	}
}
