// Package parmetis implements a ParMETIS-style adaptive graph
// repartitioner — the paper's multi-level repartitioning baseline
// (Tables 4–5, Figure 14). Two classic strategies are provided:
//
//   - ScratchRemap: partition the current graph from scratch with the
//     multilevel partitioner, then relabel the new partitions to maximize
//     overlap with the old decomposition, minimizing migration volume
//     (Schloegel, Karypis & Kumar, SC'00);
//   - Diffusion: keep the old decomposition, diffuse load from overloaded
//     to underloaded partitions across partition boundaries, then run a
//     greedy k-way boundary refinement to repair the edge cut.
//
// Like the original, the repartitioner is architecture-agnostic: it
// minimizes edge cut and migration, not hop-weighted communication.
package parmetis

import (
	"fmt"
	"sort"

	"paragon/internal/graph"
	"paragon/internal/metis"
	"paragon/internal/partition"
)

// Method selects the repartitioning strategy.
type Method int

const (
	// ScratchRemap repartitions from scratch and remaps labels.
	ScratchRemap Method = iota
	// Diffusion incrementally migrates load across partition borders.
	Diffusion
)

// Options configures Repartition.
type Options struct {
	Method Method
	// Eps is the imbalance tolerance (default 0.02).
	Eps float64
	// Seed drives the underlying multilevel partitioner.
	Seed int64
	// RefinePasses bounds the greedy boundary refinement passes of the
	// Diffusion method (default 4).
	RefinePasses int
}

func (o Options) withDefaults() Options {
	if o.Eps == 0 {
		o.Eps = 0.02
	}
	if o.RefinePasses == 0 {
		o.RefinePasses = 4
	}
	return o
}

// Repartition adapts the decomposition old of g (which must assign every
// vertex of g) to restore balance and cut quality, returning a new
// decomposition with the same number of partitions.
func Repartition(g *graph.Graph, old *partition.Partitioning, opt Options) (*partition.Partitioning, error) {
	if err := old.Validate(g); err != nil {
		return nil, fmt.Errorf("parmetis: old decomposition: %w", err)
	}
	opt = opt.withDefaults()
	switch opt.Method {
	case ScratchRemap:
		return scratchRemap(g, old, opt), nil
	case Diffusion:
		return diffusion(g, old, opt), nil
	default:
		return nil, fmt.Errorf("parmetis: unknown method %d", opt.Method)
	}
}

// scratchRemap partitions from scratch, then permutes the new labels so
// the label→label overlap (in vertex size, the migration mass) with the
// old decomposition is maximized greedily.
func scratchRemap(g *graph.Graph, old *partition.Partitioning, opt Options) *partition.Partitioning {
	k := old.K
	fresh := metis.Partition(g, k, metis.Options{Eps: opt.Eps, Seed: opt.Seed})
	// overlap[newLabel][oldLabel] = total vertex size shared.
	overlap := make([][]int64, k)
	for i := range overlap {
		overlap[i] = make([]int64, k)
	}
	for v := int32(0); v < g.NumVertices(); v++ {
		overlap[fresh.Assign[v]][old.Assign[v]] += int64(g.VertexSize(v))
	}
	relabel := greedyAssignment(overlap)
	out := partition.New(k, g.NumVertices())
	for v := range fresh.Assign {
		out.Assign[v] = relabel[fresh.Assign[v]]
	}
	return out
}

// greedyAssignment solves the label-matching problem greedily: process
// (new, old) pairs in decreasing overlap, committing each pair whose new
// and old labels are both free. Leftover labels are matched arbitrarily.
func greedyAssignment(overlap [][]int64) []int32 {
	k := len(overlap)
	type cell struct {
		n, o int32
		w    int64
	}
	cells := make([]cell, 0, k*k)
	for n := 0; n < k; n++ {
		for o := 0; o < k; o++ {
			if overlap[n][o] > 0 {
				cells = append(cells, cell{int32(n), int32(o), overlap[n][o]})
			}
		}
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].w != cells[j].w {
			return cells[i].w > cells[j].w
		}
		if cells[i].n != cells[j].n {
			return cells[i].n < cells[j].n
		}
		return cells[i].o < cells[j].o
	})
	relabel := make([]int32, k)
	for i := range relabel {
		relabel[i] = -1
	}
	usedOld := make([]bool, k)
	for _, c := range cells {
		if relabel[c.n] < 0 && !usedOld[c.o] {
			relabel[c.n] = c.o
			usedOld[c.o] = true
		}
	}
	for n := range relabel {
		if relabel[n] < 0 {
			for o := int32(0); o < int32(k); o++ {
				if !usedOld[o] {
					relabel[n] = o
					usedOld[o] = true
					break
				}
			}
		}
	}
	return relabel
}

// diffusion rebalances the old decomposition by moving boundary vertices
// out of overloaded partitions into underloaded neighbor partitions, then
// repairs the cut with greedy k-way boundary refinement under the balance
// bound.
func diffusion(g *graph.Graph, old *partition.Partitioning, opt Options) *partition.Partitioning {
	p := old.Clone()
	k := p.K
	bound := partition.BalanceBound(g, k, opt.Eps)
	load := p.Weights(g)

	// Phase 1: load diffusion. Repeatedly take the most overloaded
	// partition and push its boundary vertices toward the least-loaded
	// neighbor partition until it fits (or no movable vertex remains).
	for iter := 0; iter < int(k)*4; iter++ {
		src := int32(-1)
		for i := int32(0); i < k; i++ {
			if load[i] > bound && (src < 0 || load[i] > load[src]) {
				src = i
			}
		}
		if src < 0 {
			break // balanced
		}
		moved := false
		for v := int32(0); v < g.NumVertices() && load[src] > bound; v++ {
			if p.Assign[v] != src {
				continue
			}
			// Prefer migrating to the neighbor partition with the most
			// affinity; fall back to the globally least-loaded partition.
			dst := bestUnderloadedNeighbor(g, p, v, load, bound)
			if dst < 0 {
				continue
			}
			w := int64(g.VertexWeight(v))
			p.Assign[v] = dst
			load[src] -= w
			load[dst] += w
			moved = true
		}
		if !moved {
			// Force progress: no boundary-adjacent target exists (e.g. a
			// fully collapsed decomposition). Spill vertices one at a
			// time to whichever partition is currently least loaded.
			for v := int32(0); v < g.NumVertices() && load[src] > bound; v++ {
				if p.Assign[v] != src {
					continue
				}
				dst := int32(0)
				for i := int32(1); i < k; i++ {
					if load[i] < load[dst] {
						dst = i
					}
				}
				if dst == src {
					break
				}
				w := int64(g.VertexWeight(v))
				p.Assign[v] = dst
				load[src] -= w
				load[dst] += w
			}
		}
	}

	// Phase 2: greedy k-way boundary refinement (cut repair).
	greedyKWayRefine(g, p, bound, opt.RefinePasses)
	return p
}

func bestUnderloadedNeighbor(g *graph.Graph, p *partition.Partitioning, v int32, load []int64, bound int64) int32 {
	w := int64(g.VertexWeight(v))
	best := int32(-1)
	var bestAff int64 = -1
	aff := map[int32]int64{}
	var cand []int32 // first-seen order, so ties resolve deterministically
	adj := g.Neighbors(v)
	ew := g.EdgeWeights(v)
	for i, u := range adj {
		pu := p.Assign[u]
		if pu != p.Assign[v] {
			if _, seen := aff[pu]; !seen {
				cand = append(cand, pu)
			}
			aff[pu] += int64(ew[i])
		}
	}
	for _, pu := range cand {
		if a := aff[pu]; load[pu]+w <= bound && a > bestAff {
			best, bestAff = pu, a
		}
	}
	return best
}

// greedyKWayRefine sweeps boundary vertices, moving each to the adjacent
// partition with the highest positive cut gain whenever balance allows.
func greedyKWayRefine(g *graph.Graph, p *partition.Partitioning, bound int64, passes int) {
	load := p.Weights(g)
	for pass := 0; pass < passes; pass++ {
		improved := false
		for v := int32(0); v < g.NumVertices(); v++ {
			pv := p.Assign[v]
			adj := g.Neighbors(v)
			ew := g.EdgeWeights(v)
			var internal int64
			aff := map[int32]int64{}
			var cand []int32 // first-seen order, not map order: ties must be deterministic
			for i, u := range adj {
				pu := p.Assign[u]
				if pu == pv {
					internal += int64(ew[i])
				} else {
					if _, seen := aff[pu]; !seen {
						cand = append(cand, pu)
					}
					aff[pu] += int64(ew[i])
				}
			}
			if len(cand) == 0 {
				continue
			}
			w := int64(g.VertexWeight(v))
			best := int32(-1)
			var bestGain int64
			for _, pu := range cand {
				gain := aff[pu] - internal
				if gain > bestGain && load[pu]+w <= bound {
					best, bestGain = pu, gain
				}
			}
			if best >= 0 {
				p.Assign[v] = best
				load[pv] -= w
				load[best] += w
				improved = true
			}
		}
		if !improved {
			break
		}
	}
}
