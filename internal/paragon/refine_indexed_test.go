package paragon

import (
	"testing"

	"paragon/internal/gen"
	"paragon/internal/partition"
	"paragon/internal/stream"
	"paragon/internal/topology"
)

// RefineIndexed with a fresh BuildIndex must be bit-identical to Refine:
// the index handoff changes who pays for the build, never the moves.
func TestRefineIndexedMatchesRefine(t *testing.T) {
	g := gen.RMAT(3000, 15000, 0.57, 0.19, 0.19, 21)
	g.UseDegreeWeights()
	const k = 12
	c := topology.UniformMatrix(k)
	cfg := DefaultConfig()
	cfg.Seed = 5
	cfg.Workers = 2

	pA := stream.DG(g, k, stream.DefaultOptions())
	pB := pA.Clone()

	stA, err := Refine(g, pA, c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ix := partition.BuildIndex(g, pB)
	stB, err := RefineIndexed(g, pB, c, cfg, ix)
	if err != nil {
		t.Fatal(err)
	}

	for v := range pA.Assign {
		if pA.Assign[v] != pB.Assign[v] {
			t.Fatalf("vertex %d: Refine chose %d, RefineIndexed chose %d", v, pA.Assign[v], pB.Assign[v])
		}
	}
	if stA.Moves != stB.Moves || stA.Gain != stB.Gain {
		t.Fatalf("stats diverged: Refine %d moves gain %v, RefineIndexed %d moves gain %v",
			stA.Moves, stA.Gain, stB.Moves, stB.Gain)
	}

	// The commit loop must leave the caller's index consistent with the
	// refined decomposition — the property the session's epoch reuse
	// depends on.
	if err := ix.Validate(); err != nil {
		t.Fatalf("index inconsistent after RefineIndexed: %v", err)
	}
}

// A second RefineIndexed over the same live index must behave like a
// fresh Refine from the intermediate state: epoch-to-epoch reuse.
func TestRefineIndexedReuseAcrossCalls(t *testing.T) {
	g := gen.RMAT(2000, 9000, 0.57, 0.19, 0.19, 33)
	const k = 8
	c := topology.UniformMatrix(k)
	cfg := DefaultConfig()
	cfg.Seed = 7

	p := stream.DG(g, k, stream.DefaultOptions())
	ix := partition.BuildIndex(g, p)
	if _, err := RefineIndexed(g, p, c, cfg, ix); err != nil {
		t.Fatal(err)
	}
	pRef := p.Clone()
	cfg2 := cfg
	cfg2.Seed = 19
	if _, err := Refine(g, pRef, c, cfg2); err != nil {
		t.Fatal(err)
	}
	if _, err := RefineIndexed(g, p, c, cfg2, ix); err != nil {
		t.Fatal(err)
	}
	for v := range p.Assign {
		if p.Assign[v] != pRef.Assign[v] {
			t.Fatalf("vertex %d diverged on the second indexed call", v)
		}
	}
	if err := ix.Validate(); err != nil {
		t.Fatalf("index inconsistent after second call: %v", err)
	}
}

func TestRefineIndexedRejectsMismatches(t *testing.T) {
	g := gen.Mesh2D(10, 10)
	const k = 4
	c := topology.UniformMatrix(k)
	cfg := DefaultConfig()
	p := stream.DG(g, k, stream.DefaultOptions())

	if _, err := RefineIndexed(g, p, c, cfg, nil); err == nil {
		t.Fatal("nil index accepted")
	}
	other := p.Clone()
	ix := partition.BuildIndex(g, other)
	if _, err := RefineIndexed(g, p, c, cfg, ix); err == nil {
		t.Fatal("index over a different partitioning accepted")
	}
	g2 := gen.Mesh2D(10, 10)
	ix2 := partition.BuildIndex(g, p)
	if _, err := RefineIndexed(g2, p, c, cfg, ix2); err == nil {
		t.Fatal("index over a different graph snapshot accepted")
	}
}
