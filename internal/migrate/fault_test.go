package migrate

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"paragon/internal/faultsim"
	"paragon/internal/gen"
	"paragon/internal/stream"
)

// Every Execute outcome — success, protocol error, fault abort — must
// leave the stores verifiable: against the new decomposition on commit,
// against the old one on rollback.

func TestExecuteConflictingPlanRejected(t *testing.T) {
	g := gen.Mesh2D(4, 4)
	old := stream.HP(g, 2)
	stores := BuildStores(g, old)
	plan := &Plan{K: 2, Moves: []Move{
		{Vertex: 3, From: old.Assign[3], To: 1 - old.Assign[3]},
		{Vertex: 3, From: 1 - old.Assign[3], To: old.Assign[3]},
	}}
	_, err := Execute(stores, plan, AppContext{})
	if err == nil || !strings.Contains(err.Error(), "conflicting plan") {
		t.Fatalf("err = %v, want conflicting-plan error", err)
	}
	if err := Verify(stores, g, old); err != nil {
		t.Fatalf("stores mutated by a rejected plan: %v", err)
	}
}

func TestExecuteMalformedPlanRejected(t *testing.T) {
	g := gen.Mesh2D(4, 4)
	old := stream.HP(g, 2)
	for _, tc := range []struct {
		name string
		mv   Move
	}{
		{"rank out of range", Move{Vertex: 1, From: 0, To: 9}},
		{"negative rank", Move{Vertex: 1, From: -1, To: 1}},
		{"degenerate", Move{Vertex: 1, From: 0, To: 0}},
	} {
		stores := BuildStores(g, old)
		plan := &Plan{K: 2, Moves: []Move{tc.mv}}
		if _, err := Execute(stores, plan, AppContext{}); err == nil {
			t.Fatalf("%s: plan accepted", tc.name)
		}
		if err := Verify(stores, g, old); err != nil {
			t.Fatalf("%s: stores mutated by a rejected plan: %v", tc.name, err)
		}
	}
}

// A missing vertex is detected during staging and the whole migration
// rolls back — the old decomposition still verifies for every vertex the
// saboteur left in place.
func TestExecuteMissingVertexRollsBack(t *testing.T) {
	g := gen.RMAT(400, 2000, 0.57, 0.19, 0.19, 5)
	old := stream.DG(g, 4, stream.DefaultOptions())
	now := old.Clone()
	for v := int32(0); v < 60; v++ {
		now.Assign[v] = (now.Assign[v] + 1) % 4
	}
	stores := BuildStores(g, old)
	sab := int32(-1) // first vertex the plan moves
	for v := int32(0); v < g.NumVertices(); v++ {
		if old.Assign[v] != now.Assign[v] {
			sab = v
			break
		}
	}
	delete(stores[old.Assign[sab]].Vertices, sab)
	plan, err := NewPlan(old, now)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Execute(stores, plan, AppContext{})
	if err == nil || !strings.Contains(err.Error(), "does not hold vertex") {
		t.Fatalf("err = %v, want missing-vertex error", err)
	}
	if !st.Aborted {
		t.Fatal("stats do not mark the rollback")
	}
	// Restore the sabotaged vertex and the pre-plan state must verify —
	// i.e. every *other* vertex was rolled back to its sender.
	stores[old.Assign[sab]].Vertices[sab] = &VertexData{}
	if err := Verify(stores, g, old); err != nil {
		t.Fatalf("rollback incomplete: %v", err)
	}
}

// A scheduled abort mid-plan rolls every rank back; Verify passes
// against the old decomposition and the application context returns to
// the senders through the Restore hook.
func TestExecuteAbortRollsBackStoresAndAppState(t *testing.T) {
	g := gen.RMAT(600, 3000, 0.57, 0.19, 0.19, 8)
	old := stream.DG(g, 6, stream.DefaultOptions())
	now := old.Clone()
	for v := int32(0); v < 150; v++ {
		now.Assign[v] = (now.Assign[v] + 1) % 6
	}
	plan, err := NewPlan(old, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) < 10 {
		t.Fatalf("scenario too small: %d moves", len(plan.Moves))
	}
	// Abort two thirds of the way through the plan.
	abortAt := 2 * len(plan.Moves) / 3
	fab := faultsim.NewInjector(faultsim.Config{Script: []faultsim.Event{
		{Kind: faultsim.KindAbort, Round: 0, Index: abortAt},
	}})

	// Per-vertex app state with destructive Save, as in the §5 BFS
	// example: the sender forgets the value when the vertex departs.
	state := make([]int64, g.NumVertices())
	for v := range state {
		state[v] = int64(v)*3 + 1
	}
	ctx := AppContext{
		Save: func(v int32) []byte {
			var buf bytes.Buffer
			binary.Write(&buf, binary.LittleEndian, state[v])
			state[v] = -1
			return buf.Bytes()
		},
		Restore: func(v int32, data []byte) {
			var d int64
			binary.Read(bytes.NewReader(data), binary.LittleEndian, &d)
			state[v] = d
		},
	}

	stores := BuildStores(g, old)
	st, err := ExecuteWith(stores, plan, ctx, fab)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if !st.Aborted {
		t.Fatal("stats do not mark the abort")
	}
	if st.RolledBack == 0 || st.RolledBack >= int64(len(plan.Moves)) {
		t.Fatalf("rolled back %d of %d — abort should land mid-plan", st.RolledBack, len(plan.Moves))
	}
	if st.MovedVertices != 0 {
		t.Fatalf("aborted migration reports %d moved vertices", st.MovedVertices)
	}
	if err := Verify(stores, g, old); err != nil {
		t.Fatalf("rollback incomplete: %v", err)
	}
	for v := range state {
		if state[v] != int64(v)*3+1 {
			t.Fatalf("vertex %d app state not restored: %d", v, state[v])
		}
	}
}

// An abort at plan index 0 is a full no-op; an abort schedule that never
// fires commits normally.
func TestExecuteAbortEdges(t *testing.T) {
	g := gen.Mesh2D(8, 8)
	old := stream.HP(g, 4)
	now := old.Clone()
	for v := int32(0); v < 16; v++ {
		now.Assign[v] = (now.Assign[v] + 1) % 4
	}
	plan, err := NewPlan(old, now)
	if err != nil {
		t.Fatal(err)
	}

	stores := BuildStores(g, old)
	fab := faultsim.NewInjector(faultsim.Config{Script: []faultsim.Event{
		{Kind: faultsim.KindAbort, Round: 0, Index: 0},
	}})
	st, err := ExecuteWith(stores, plan, AppContext{}, fab)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if st.RolledBack != 0 {
		t.Fatalf("abort-at-0 rolled back %d vertices, want 0", st.RolledBack)
	}
	if err := Verify(stores, g, old); err != nil {
		t.Fatalf("abort-at-0 touched the stores: %v", err)
	}

	stores = BuildStores(g, old)
	quiet := faultsim.NewInjector(faultsim.Config{}) // rate 0, no script
	st, err = ExecuteWith(stores, plan, AppContext{}, quiet)
	if err != nil {
		t.Fatal(err)
	}
	if st.Aborted || st.MovedVertices != int64(len(plan.Moves)) {
		t.Fatalf("zero-fault fabric perturbed the migration: %+v", st)
	}
	if err := Verify(stores, g, now); err != nil {
		t.Fatal(err)
	}
}

// Sweep stochastic abort schedules: whatever the seed, the outcome is
// binary — fully migrated (Verify(now)) or fully rolled back
// (Verify(old)) — and identical seeds behave identically.
func TestExecuteFaultSweepAtomic(t *testing.T) {
	g := gen.RMAT(500, 2500, 0.57, 0.19, 0.19, 12)
	old := stream.DG(g, 5, stream.DefaultOptions())
	now := old.Clone()
	for v := int32(0); v < 120; v++ {
		now.Assign[v] = (now.Assign[v] + 2) % 5
	}
	plan, err := NewPlan(old, now)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 8; seed++ {
		outcome := func() (bool, int64) {
			stores := BuildStores(g, old)
			fab := faultsim.NewInjector(faultsim.Config{Seed: seed, Rate: 0.01})
			st, err := ExecuteWith(stores, plan, AppContext{}, fab)
			if err != nil {
				if !errors.Is(err, ErrAborted) {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if verr := Verify(stores, g, old); verr != nil {
					t.Fatalf("seed %d: aborted but not rolled back: %v", seed, verr)
				}
				return true, st.RolledBack
			}
			if verr := Verify(stores, g, now); verr != nil {
				t.Fatalf("seed %d: committed but wrong: %v", seed, verr)
			}
			return false, st.MovedVertices
		}
		a1, n1 := outcome()
		a2, n2 := outcome()
		if a1 != a2 || n1 != n2 {
			t.Fatalf("seed %d nondeterministic: (%v,%d) vs (%v,%d)", seed, a1, n1, a2, n2)
		}
	}
}
