// Package fixture spawns goroutines and defers that race on loop state;
// every spawn below must be reported.
package fixture

// Classic fan-out bug: the closure captures the loop variables and
// writes a shared slice with no synchronization in sight.
func fanOut(items []int, results []int) {
	for i, it := range items {
		go func() {
			results[i] = it * 2
		}()
	}
}

// Deferred closures capture the last loop value under pre-1.22
// semantics and are fragile either way; pass the value as an argument.
func deferred(files []string) {
	for _, f := range files {
		defer func() {
			println(f)
		}()
	}
}
