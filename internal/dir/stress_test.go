package dir

import (
	"sync"
	"sync/atomic"
	"testing"

	"paragon/internal/migrate"
)

// The torn-read acceptance test, concurrent form: reader goroutines
// hammer Lookup/Current while a publisher flips epochs as fast as it
// can. Every observed (vertex, rank, epoch) triple must match the one
// committed snapshot of that epoch — the publisher registers each
// epoch's expected assignment before the flip makes it visible — and
// each reader's observed epoch sequence must be monotone. Run under
// -race this also proves the lock-free read path clean.
func TestConcurrentLookupsDuringFlips(t *testing.T) {
	const (
		n       = 4096
		k       = 8
		flips   = 300
		readers = 4
	)
	assign := testAssign(n, k, 77)
	d := mustNew(t, assign, k, Options{ShardBits: 8})

	var expected sync.Map // epoch int64 -> []int32
	expected.Store(int64(0), append([]int32(nil), assign...))

	var stop atomic.Bool
	var torn atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			x := uint64(r)*0x9e3779b97f4a7c15 + 1
			lastEpoch := int64(-1)
			for !stop.Load() {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				v := int32(x % n)
				rank, epoch := d.Lookup(v)
				if epoch < lastEpoch {
					torn.Add(1)
					return
				}
				lastEpoch = epoch
				want, ok := expected.Load(epoch)
				if !ok || want.([]int32)[v] != rank {
					torn.Add(1)
					return
				}
				// The snapshot form of the same invariant: a snapshot
				// read entirely after the load must be internally
				// consistent with its own epoch.
				s := d.Current()
				w2, ok := expected.Load(s.Epoch())
				if !ok || w2.([]int32)[v] != s.Rank(v) {
					torn.Add(1)
					return
				}
			}
		}(r)
	}

	target := append([]int32(nil), assign...)
	for f := 0; f < flips; f++ {
		for v := f % 5; v < n; v += 5 {
			target[v] = (target[v] + 1) % k
		}
		// Register the epoch's truth before any reader can observe it.
		expected.Store(int64(f+1), append([]int32(nil), target...))
		if _, err := d.PublishAssign(target); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	if torn.Load() != 0 {
		t.Fatalf("%d torn reads observed across %d flips", torn.Load(), flips)
	}
	if d.Epoch() != flips {
		t.Fatalf("final epoch = %d, want %d", d.Epoch(), flips)
	}
}

// Concurrent publishers must serialize cleanly: every publish lands on a
// distinct epoch, the journal stays parseable, and recovery matches.
func TestConcurrentPublishersSerialize(t *testing.T) {
	const n, k, writers, each = 512, 4, 4, 25
	assign := testAssign(n, k, 13)
	d := mustNew(t, assign, k, Options{ShardBits: 7})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				v := int32((w*each + i) % n)
				d.mu.Lock()
				from := d.cur.Load().Rank(v)
				_, err := d.publishLocked([]migrate.Move{{Vertex: v, From: from, To: (from + 1) % k}})
				d.mu.Unlock()
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if d.Epoch() != writers*each {
		t.Fatalf("epoch = %d, want %d (every publish a distinct epoch)", d.Epoch(), writers*each)
	}
	r, err := Recover(d.JournalBytes(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Current().AssignHash() != d.Current().AssignHash() {
		t.Fatal("recovery diverged after concurrent publishers")
	}
}

// FuzzEpochLookup drives a directory through fuzz-chosen publishes and
// lookups, asserting the paper-level invariant on every observation:
// each (vertex, rank, epoch) triple matches exactly one committed epoch
// snapshot, stale lookups forward to the live epoch, and recovery of the
// journal reproduces the live state.
func FuzzEpochLookup(f *testing.F) {
	f.Add(uint64(1), []byte{0x01, 0x22, 0x9f})
	f.Add(uint64(42), []byte{0xff, 0x00, 0x10, 0x80, 0x33, 0x71})
	f.Add(uint64(7), []byte{})
	f.Fuzz(func(t *testing.T, seed uint64, ops []byte) {
		const n, k = 256, 4
		assign := testAssign(n, k, seed)
		d, err := New(assign, k, Options{ShardBits: 6})
		if err != nil {
			t.Fatal(err)
		}
		committed := [][]int32{append([]int32(nil), assign...)} // index = epoch
		if len(ops) > 64 {
			ops = ops[:64]
		}
		target := append([]int32(nil), assign...)
		for _, op := range ops {
			v := int32(op) % n
			switch {
			case op&0x80 != 0: // publish: move a stride of vertices
				for u := v; u < n; u += 16 {
					target[u] = (target[u] + 1) % k
				}
				if _, err := d.PublishAssign(target); err != nil {
					t.Fatal(err)
				}
				committed = append(committed, append([]int32(nil), target...))
			default: // lookup at a fuzz-chosen pinned epoch
				live := int64(len(committed) - 1)
				pin := int64(op>>2) % (live + 2) // may exceed live by one
				r, err := d.LookupAt(pin, v)
				if pin > live {
					if err == nil {
						t.Fatalf("future epoch %d (live %d) served", pin, live)
					}
					continue
				}
				if err != nil {
					t.Fatal(err)
				}
				// The triple must match exactly one committed snapshot:
				// the one whose epoch it carries.
				if r.Epoch != live {
					t.Fatalf("lookup returned epoch %d, live is %d", r.Epoch, live)
				}
				if want := committed[r.Epoch][v]; r.Rank != want {
					t.Fatalf("epoch %d vertex %d = %d, want %d (torn read)", r.Epoch, v, r.Rank, want)
				}
				if r.Forwarded != (pin < live) {
					t.Fatalf("pin %d live %d: Forwarded = %v", pin, live, r.Forwarded)
				}
			}
		}
		// Whatever history the fuzzer chose, the journal reproduces it.
		rec, err := Recover(d.JournalBytes(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rec.Epoch() != d.Epoch() || rec.Current().AssignHash() != d.Current().AssignHash() {
			t.Fatal("recovery diverged from fuzzed history")
		}
	})
}
