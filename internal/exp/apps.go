package exp

import (
	"fmt"
	"math/rand"
	"time"

	"paragon/internal/apps"
	"paragon/internal/bsp"
	"paragon/internal/dyn"
	"paragon/internal/gen"
	"paragon/internal/graph"
	"paragon/internal/metis"
	"paragon/internal/partition"
	"paragon/internal/stream"
)

// Real-world application experiments (§7.2): BFS and SSSP on the
// YouTube, as-skitter and com-lj stand-ins, partitioned across three
// compute nodes of each cluster, with the overhead of each
// repartitioner/refiner reported alongside (the parenthesized numbers of
// Tables 4–5).

// appDatasets returns the three §7.2 datasets with their message
// grouping sizes (8 for YouTube/as-skitter, 16 for com-lj).
func appDatasets(scale float64) []struct {
	Name  string
	Graph *graph.Graph
	Group int
} {
	out := make([]struct {
		Name  string
		Graph *graph.Graph
		Group int
	}, 0, 3)
	for _, spec := range []struct {
		name  string
		group int
	}{{"YouTube", 8}, {"as-skitter", 8}, {"com-lj", 16}} {
		d, err := gen.DatasetByName(spec.name)
		if err != nil {
			panic(err)
		}
		g := d.Build(scale)
		g.UseDegreeWeights()
		out = append(out, struct {
			Name  string
			Graph *graph.Graph
			Group int
		}{spec.name, g, spec.group})
	}
	return out
}

// decomposition is one algorithm's placement plus its preparation
// overhead (refinement/repartitioning time; zero for initial
// partitioners, matching the paper's presentation).
type decomposition struct {
	Algo     string
	P        *partition.Partitioning
	Overhead time.Duration
}

// buildDecompositions prepares the Table 4/5 algorithm lineup for one
// dataset on one environment. Gordon omits METIS/PARMETIS exactly as the
// paper's tables do.
func buildDecompositions(g *graph.Graph, env Env, full bool) []decomposition {
	k := int32(env.K)
	dg := stream.DG(g, k, stream.DefaultOptions())
	out := []decomposition{{Algo: "DG", P: dg}}
	if full {
		start := time.Now()
		mp := metis.Partition(g, k, metis.Options{Seed: 100})
		out = append(out, decomposition{Algo: "METIS", P: mp, Overhead: time.Since(start)})
		pm, dt := RepartitionParMetis(g, dg.Clone(), 7)
		out = append(out, decomposition{Algo: "PARMETIS", P: pm, Overhead: dt})
	}
	uni := dg.Clone()
	stU := RefineUniParagon(g, uni, env, 8, 8, 42)
	out = append(out, decomposition{Algo: "UNIPARAGON", P: uni, Overhead: stU.RefinementTime})
	par := dg.Clone()
	stP := RefineParagon(g, par, env, 8, 8, 42)
	out = append(out, decomposition{Algo: "PARAGON", P: par, Overhead: stP.RefinementTime})
	return out
}

// sources picks deterministic pseudo-random source vertices (the paper
// uses 15 random sources).
func sources(n int32, count int, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int32, count)
	for i := range out {
		out[i] = int32(rng.Intn(int(n)))
	}
	return out
}

// appKind selects BFS or SSSP.
type appKind int

const (
	appBFS appKind = iota
	appSSSP
)

func (a appKind) String() string {
	if a == appBFS {
		return "BFS"
	}
	return "SSSP"
}

// runJob executes the app from every source and returns the summed JET
// and accumulated volume (the paper's JET is summed over supersteps; we
// additionally sum over the 15 sources, as its tables do).
func runJob(kind appKind, g *graph.Graph, p *partition.Partitioning, env Env, group int, srcs []int32) (float64, bsp.VolumeBreakdown) {
	opts := env.BSPOptions()
	opts.MsgGroupSize = group
	e, err := bsp.NewEngine(g, p, env.Cluster, opts)
	if err != nil {
		panic(fmt.Sprintf("exp: engine: %v", err))
	}
	var jet float64
	var vol bsp.VolumeBreakdown
	for _, s := range srcs {
		var res bsp.Result
		switch kind {
		case appBFS:
			_, res, err = apps.BFS(e, g, s)
		default:
			_, res, err = apps.SSSP(e, g, s)
		}
		if err != nil {
			panic(fmt.Sprintf("exp: %v run: %v", kind, err))
		}
		jet += res.JET
		vol.IntraSocket += res.Volume.IntraSocket
		vol.InterSocket += res.Volume.InterSocket
		vol.InterNode += res.Volume.InterNode
	}
	return jet, vol
}

// jobTable regenerates Table 4 (BFS) or Table 5 (SSSP): JET per
// algorithm per dataset on both clusters, with preparation overhead in
// parentheses.
func jobTable(kind appKind, id string, scale float64, nSources int) *Table {
	tab := &Table{
		ID:     id,
		Title:  fmt.Sprintf("%s job execution time (model units; overhead in parens)", kind),
		Header: []string{"cluster", "algorithm", "YouTube", "as-skitter", "com-lj"},
		Notes:  "paper: PARAGON beats DG/PARMETIS/UNIPARAGON everywhere and METIS in 4 of 6 cases",
	}
	ds := appDatasets(scale)
	for _, envSpec := range []struct {
		env  Env
		full bool
	}{
		{PittEnv(3), true},
		{GordonEnv(3), false},
	} {
		env := envSpec.env
		// Decompositions per dataset, keyed by algorithm order.
		var algoNames []string
		cells := map[string][]string{}
		for _, d := range ds {
			decs := buildDecompositions(d.Graph, env, envSpec.full)
			srcs := sources(d.Graph.NumVertices(), nSources, 99)
			for _, dec := range decs {
				jet, _ := runJob(kind, d.Graph, dec.P, env, d.Group, srcs)
				cell := f0(jet)
				if dec.Overhead > 0 {
					cell = fmt.Sprintf("%s (%.2fs)", cell, dec.Overhead.Seconds())
				}
				cells[dec.Algo] = append(cells[dec.Algo], cell)
			}
			if algoNames == nil {
				for _, dec := range decs {
					algoNames = append(algoNames, dec.Algo)
				}
			}
		}
		for _, a := range algoNames {
			tab.Rows = append(tab.Rows, append([]string{env.Name, a}, cells[a]...))
		}
	}
	return tab
}

// Table4 regenerates the BFS job-execution-time table.
func Table4(scale float64, nSources int) *Table { return jobTable(appBFS, "table4", scale, nSources) }

// Table5 regenerates the SSSP job-execution-time table.
func Table5(scale float64, nSources int) *Table { return jobTable(appSSSP, "table5", scale, nSources) }

// volumeTable regenerates Figure 12 (PittMPICluster) or Figure 13
// (Gordon): the accumulated BFS communication-volume breakdown.
func volumeTable(id string, env Env, full bool, scale float64, nSources int) *Table {
	tab := &Table{
		ID:     id,
		Title:  fmt.Sprintf("BFS communication volume breakdown on %s (KB)", env.Name),
		Header: []string{"dataset", "algorithm", "intra-socket", "inter-socket", "inter-node"},
	}
	for _, d := range appDatasets(scale) {
		decs := buildDecompositions(d.Graph, env, full)
		srcs := sources(d.Graph.NumVertices(), nSources, 99)
		for _, dec := range decs {
			_, vol := runJob(appBFS, d.Graph, dec.P, env, d.Group, srcs)
			tab.Rows = append(tab.Rows, []string{
				d.Name, dec.Algo,
				f0(float64(vol.IntraSocket) / 1024),
				f0(float64(vol.InterSocket) / 1024),
				f0(float64(vol.InterNode) / 1024),
			})
		}
	}
	tab.Notes = "paper: PARAGON has the lowest volume on the critical component (inter-node on Gordon, intra-node on Pitt)"
	return tab
}

// Fig12 regenerates the PittMPICluster volume breakdown.
func Fig12(scale float64, nSources int) *Table {
	return volumeTable("fig12", PittEnv(3), true, scale, nSources)
}

// Fig13 regenerates the Gordon volume breakdown.
func Fig13(scale float64, nSources int) *Table {
	return volumeTable("fig13", GordonEnv(3), false, scale, nSources)
}

// Fig14 regenerates the graph-dynamism experiment: BFS JET on five
// growing snapshots of the YouTube stand-in, with new vertices injected
// by DG and each algorithm adapting (or not) the decomposition.
func Fig14(scale float64, nSources int) *Table {
	env := PittEnv(3)
	k := int32(env.K)
	d, err := gen.DatasetByName("YouTube")
	if err != nil {
		panic(err)
	}
	full := d.Build(scale)
	full.UseDegreeWeights()
	snaps, err := dyn.Snapshots(full, 5, 5)
	if err != nil {
		panic(fmt.Sprintf("exp: snapshots: %v", err))
	}
	algos := []string{"DG", "METIS", "PARMETIS", "UNIPARAGON", "PARAGON"}
	tab := &Table{
		ID:     "fig14",
		Title:  "BFS JET with graph dynamism (YouTube snapshots S1..S5, model units)",
		Header: append([]string{"algorithm"}, "S1", "S2", "S3", "S4", "S5"),
		Notes:  "paper: at S5 PARAGON is ~90% better than DG and ~73% better than PARMETIS",
	}
	// Evolving decompositions carried across snapshots per algorithm.
	carried := map[string]*partition.Partitioning{}
	cells := map[string][]string{}
	for si, snap := range snaps {
		g := snap.Graph
		srcs := sources(g.NumVertices(), nSources, int64(200+si))
		for _, algo := range algos {
			// Inject new vertices into the carried decomposition.
			injected, err := dyn.Inject(snap, carried[algo], k, 0.02)
			if err != nil {
				panic(fmt.Sprintf("exp: inject: %v", err))
			}
			cur := injected
			switch algo {
			case "DG":
				// No adaptation.
			case "METIS":
				// Repartition the snapshot from scratch.
				cur = metis.Partition(g, k, metis.Options{Seed: 100})
			case "PARMETIS":
				cur, _ = RepartitionParMetis(g, injected, 7)
			case "UNIPARAGON":
				RefineUniParagon(g, cur, env, 8, 8, 42)
			case "PARAGON":
				RefineParagon(g, cur, env, 8, 8, 42)
			}
			carried[algo] = cur
			jet, _ := runJob(appBFS, g, cur, env, 8, srcs)
			cells[algo] = append(cells[algo], f0(jet))
		}
	}
	for _, algo := range algos {
		tab.Rows = append(tab.Rows, append([]string{algo}, cells[algo]...))
	}
	return tab
}
