// Package fixture reads the wall clock inside what the checker treats
// as a refinement kernel; both reads must be reported.
package fixture

import "time"

func refineTimed() time.Duration {
	start := time.Now()
	refine()
	return time.Since(start)
}

func refine() {}
