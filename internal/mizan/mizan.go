// Package mizan implements a Mizan-style dynamic repartitioner (Khayyat
// et al., EuroSys'13) — the "lightweight graph repartitioners" family of
// the paper's Figure 1 that migrates vertices based on *runtime
// characteristics of the workload* (messages sent/received per vertex)
// rather than graph structure. The bsp engine collects those statistics
// when Options.TrackVertexTraffic is set.
//
// Strategy, following the original's spirit: identify the highest-traffic
// vertices, and migrate each to the partition holding most of its
// communication counterparts (its neighbors, weighted by edge weight),
// provided balance allows — hot vertices dominate superstep time, so
// localizing their traffic shortens the critical path. Like Mizan, and
// unlike PARAGON, the heuristic is architecture-agnostic.
package mizan

import (
	"fmt"
	"sort"

	"paragon/internal/graph"
	"paragon/internal/partition"
)

// Options tunes Repartition.
type Options struct {
	// TopFraction is the fraction of vertices (by traffic) considered
	// for migration (default 0.1, the hot set).
	TopFraction float64
	// Eps is the balance tolerance (default 0.02).
	Eps float64
}

func (o Options) withDefaults() Options {
	if o.TopFraction == 0 {
		o.TopFraction = 0.1
	}
	if o.TopFraction < 0 {
		o.TopFraction = 0
	}
	if o.TopFraction > 1 {
		o.TopFraction = 1
	}
	if o.Eps == 0 {
		o.Eps = 0.02
	}
	return o
}

// Stats reports one repartitioning.
type Stats struct {
	Considered int // hot vertices examined
	Moves      int // migrations performed
}

// Repartition migrates hot vertices of the decomposition old according
// to the per-vertex traffic counters (as produced by
// bsp.Result.VertexTraffic). It returns the adapted decomposition.
func Repartition(g *graph.Graph, old *partition.Partitioning, traffic []int64, opt Options) (*partition.Partitioning, Stats, error) {
	if err := old.Validate(g); err != nil {
		return nil, Stats{}, fmt.Errorf("mizan: %w", err)
	}
	if int32(len(traffic)) != g.NumVertices() {
		return nil, Stats{}, fmt.Errorf("mizan: %d traffic counters for %d vertices", len(traffic), g.NumVertices())
	}
	opt = opt.withDefaults()
	p := old.Clone()
	var st Stats

	// Hot set: vertices by descending traffic, skipping the untouched.
	order := make([]int32, 0, g.NumVertices())
	for v := int32(0); v < g.NumVertices(); v++ {
		if traffic[v] > 0 {
			order = append(order, v)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if traffic[order[i]] != traffic[order[j]] {
			return traffic[order[i]] > traffic[order[j]]
		}
		return order[i] < order[j]
	})
	hot := int(float64(len(order)) * opt.TopFraction)
	if hot < 1 && len(order) > 0 {
		hot = 1
	}
	order = order[:hot]

	bound := partition.BalanceBound(g, p.K, opt.Eps)
	load := p.Weights(g)
	aff := make([]int64, p.K)
	for _, v := range order {
		st.Considered++
		cur := p.Assign[v]
		// Affinity: edge weight toward each partition.
		dext := partition.ExternalDegreesInto(g, p, v, aff)
		best := cur
		for pi := int32(0); pi < p.K; pi++ {
			if pi == cur {
				continue
			}
			if dext[pi] > dext[best] && load[pi]+int64(g.VertexWeight(v)) <= bound {
				best = pi
			}
		}
		if best != cur && dext[best] > dext[cur] {
			w := int64(g.VertexWeight(v))
			load[cur] -= w
			load[best] += w
			p.Assign[v] = best
			st.Moves++
		}
	}
	return p, st, nil
}
