package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary CSR format: a compact, mmap-friendly on-disk representation for
// the large generated datasets (the text formats get slow past ~10M
// edges). Layout, all little-endian:
//
//	magic   uint32  = 0x50415247 ("PARG")
//	version uint32  = 1
//	n       int64   vertex count
//	m       int64   half-edge count
//	xadj    [n+1]int64
//	adj     [m]int32
//	ewgt    [m]int32
//	vwgt    [n]int32
//	vsize   [n]int32

const (
	binaryMagic   = 0x50415247
	binaryVersion = 1
)

// WriteBinary writes g in binary CSR format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := []interface{}{
		uint32(binaryMagic), uint32(binaryVersion),
		int64(g.NumVertices()), g.NumHalfEdges(),
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("graph: binary header: %w", err)
		}
	}
	for _, arr := range []interface{}{g.xadj, g.adj, g.ewgt, g.vwgt, g.vsize} {
		if err := binary.Write(bw, binary.LittleEndian, arr); err != nil {
			return fmt.Errorf("graph: binary body: %w", err)
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary CSR format and validates the result.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic, version uint32
	var n, m int64
	for _, v := range []interface{}{&magic, &version, &n, &m} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("graph: binary header: %w", err)
		}
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", magic)
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("graph: unsupported binary version %d", version)
	}
	if n < 0 || m < 0 || n > 1<<31-2 {
		return nil, fmt.Errorf("graph: implausible binary sizes n=%d m=%d", n, m)
	}
	// Sizes come from an untrusted header: read incrementally so a lying
	// header fails with ErrUnexpectedEOF instead of exhausting memory.
	xadj, err := readI64Slice(br, n+1)
	if err != nil {
		return nil, fmt.Errorf("graph: binary xadj: %w", err)
	}
	adj, err := readI32Slice(br, m)
	if err != nil {
		return nil, fmt.Errorf("graph: binary adj: %w", err)
	}
	ewgt, err := readI32Slice(br, m)
	if err != nil {
		return nil, fmt.Errorf("graph: binary ewgt: %w", err)
	}
	vwgt, err := readI32Slice(br, n)
	if err != nil {
		return nil, fmt.Errorf("graph: binary vwgt: %w", err)
	}
	vsize, err := readI32Slice(br, n)
	if err != nil {
		return nil, fmt.Errorf("graph: binary vsize: %w", err)
	}
	g := &Graph{xadj: xadj, adj: adj, ewgt: ewgt, vwgt: vwgt, vsize: vsize}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: binary payload: %w", err)
	}
	return g, nil
}

// readChunk bounds each allocation step so untrusted headers cannot force
// a huge up-front allocation.
const readChunk = 1 << 20

func readI32Slice(r io.Reader, count int64) ([]int32, error) {
	out := make([]int32, 0, min64(count, readChunk))
	for int64(len(out)) < count {
		step := min64(count-int64(len(out)), readChunk)
		buf := make([]int32, step)
		if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
			return nil, err
		}
		out = append(out, buf...)
	}
	return out, nil
}

func readI64Slice(r io.Reader, count int64) ([]int64, error) {
	out := make([]int64, 0, min64(count, readChunk))
	for int64(len(out)) < count {
		step := min64(count-int64(len(out)), readChunk)
		buf := make([]int64, step)
		if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
			return nil, err
		}
		out = append(out, buf...)
	}
	return out, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
